package vocab

import "testing"

// FuzzTokenize: tokenization must never produce empty tokens or panic,
// and must be idempotent under re-joining.
func FuzzTokenize(f *testing.F) {
	f.Add("Where is the TV?")
	f.Add("")
	f.Add("...!!!???")
	f.Add("ünïcödé wörds\tand\ntabs")
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, sep := range []byte{' ', '\t', '.', '?', ',', '!', '\n', '\r'} {
				for i := 0; i < len(tok); i++ {
					if tok[i] == sep {
						t.Fatalf("token %q contains separator %q", tok, sep)
					}
				}
			}
		}
		// Re-tokenizing a single token yields that token.
		for _, tok := range toks {
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("tokenization not idempotent for %q: %v", tok, again)
			}
		}
	})
}
