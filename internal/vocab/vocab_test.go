package vocab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReservesPad(t *testing.T) {
	v := New()
	if v.Size() != 1 {
		t.Fatalf("new vocabulary size = %d, want 1 (pad only)", v.Size())
	}
	if v.Lookup(PadToken) != 0 {
		t.Errorf("pad token ID = %d, want 0", v.Lookup(PadToken))
	}
}

func TestAddIsIdempotent(t *testing.T) {
	v := New()
	a := v.Add("kitchen")
	b := v.Add("kitchen")
	if a != b {
		t.Errorf("Add returned %d then %d for the same word", a, b)
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d after one distinct Add, want 2", v.Size())
	}
}

func TestLookupUnknown(t *testing.T) {
	if got := New().Lookup("garden"); got != NilID {
		t.Errorf("Lookup(unknown) = %d, want NilID", got)
	}
}

func TestWordRoundTrip(t *testing.T) {
	v := New()
	id := v.Add("hallway")
	if got := v.Word(id); got != "hallway" {
		t.Errorf("Word(%d) = %q, want hallway", id, got)
	}
}

func TestWordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Word(99) did not panic")
		}
	}()
	New().Word(99)
}

func TestEncodeGrowsVocabulary(t *testing.T) {
	v := New()
	ids := v.Encode([]string{"john", "went", "to", "the", "kitchen"})
	if len(ids) != 5 {
		t.Fatalf("Encode returned %d ids", len(ids))
	}
	if v.Size() != 6 {
		t.Errorf("Size = %d, want 6", v.Size())
	}
	again := v.Encode([]string{"john", "kitchen"})
	if again[0] != ids[0] || again[1] != ids[4] {
		t.Error("re-encoding known words produced different IDs")
	}
}

func TestEncodeStrict(t *testing.T) {
	v := New()
	v.Encode([]string{"mary", "milk"})
	if _, err := v.EncodeStrict([]string{"mary", "milk"}); err != nil {
		t.Errorf("EncodeStrict on known words: %v", err)
	}
	if _, err := v.EncodeStrict([]string{"unseen"}); err == nil {
		t.Error("EncodeStrict accepted an unknown word")
	}
	if v.Size() != 3 {
		t.Errorf("EncodeStrict grew the vocabulary to %d", v.Size())
	}
}

func TestAddAllAndWords(t *testing.T) {
	v := New().AddAll([]string{"a", "b"}, []string{"b", "c"})
	if v.Size() != 4 {
		t.Fatalf("Size = %d, want 4", v.Size())
	}
	words := v.Words()
	words[0] = "mutated"
	if v.Word(0) != PadToken {
		t.Error("Words() must return a copy")
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"John went to the kitchen.", []string{"john", "went", "to", "the", "kitchen"}},
		{"Where is the TV?", []string{"where", "is", "the", "tv"}},
		{"", nil},
		{"  .?,  ", nil},
		{"a,b.c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestQuickTokenizeNoEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortedByWord(t *testing.T) {
	v := New().AddAll([]string{"zebra", "apple"})
	sorted := v.SortedByWord()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("SortedByWord not sorted: %v", sorted)
		}
	}
}

func TestZipfCDFProperties(t *testing.T) {
	m := NewZipfModel(1000, 1.0)
	var sum float64
	prev := 0.0
	for k := 0; k < m.V; k++ {
		p := m.Probability(k)
		if p < 0 {
			t.Fatalf("negative probability at rank %d", k)
		}
		if k > 0 && p > prev+1e-12 {
			t.Fatalf("probability not monotone non-increasing at rank %d: %g > %g", k, p, prev)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g, want 1", sum)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	flat := NewZipfModel(100, 0)
	skewed := NewZipfModel(100, 1.2)
	if flat.Probability(0) >= skewed.Probability(0) {
		t.Errorf("skewed model should concentrate more mass on rank 0: flat=%g skewed=%g",
			flat.Probability(0), skewed.Probability(0))
	}
	if math.Abs(flat.Probability(0)-0.01) > 1e-9 {
		t.Errorf("s=0 should be uniform: P(0) = %g", flat.Probability(0))
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	m := NewZipfModel(50, 1.0)
	rng := rand.New(rand.NewSource(9))
	const n = 200000
	counts := make([]int, m.V)
	for i := 0; i < n; i++ {
		counts[m.Sample(rng)]++
	}
	// Empirical frequency of rank 0 should match the model within a few
	// standard deviations.
	p0 := m.Probability(0)
	emp := float64(counts[0]) / n
	sd := math.Sqrt(p0 * (1 - p0) / n)
	if math.Abs(emp-p0) > 6*sd {
		t.Errorf("rank-0 empirical frequency %g too far from model %g (sd %g)", emp, p0, sd)
	}
	// Rank ordering should hold for the head of the distribution.
	if counts[0] < counts[10] {
		t.Errorf("rank 0 sampled less often than rank 10: %d < %d", counts[0], counts[10])
	}
}

func TestZipfStreamLengthAndRange(t *testing.T) {
	m := NewZipfModel(30, 1.0)
	s := m.Stream(rand.New(rand.NewSource(1)), 1234)
	if len(s) != 1234 {
		t.Fatalf("Stream length = %d", len(s))
	}
	for _, r := range s {
		if r < 0 || r >= 30 {
			t.Fatalf("sampled rank %d out of range", r)
		}
	}
}

func TestZipfTopMass(t *testing.T) {
	m := NewZipfModel(100, 1.0)
	if got := m.TopMass(0); got != 0 {
		t.Errorf("TopMass(0) = %g", got)
	}
	if got := m.TopMass(100); got != 1 {
		t.Errorf("TopMass(V) = %g, want 1", got)
	}
	if got := m.TopMass(1000); got != 1 {
		t.Errorf("TopMass(>V) = %g, want 1", got)
	}
	if m.TopMass(10) <= m.TopMass(5) {
		t.Error("TopMass must be strictly increasing on the head")
	}
	// With s=1 and V=100 the top 10 words carry well over a third of the
	// mass — this skew is what makes small embedding caches effective.
	if m.TopMass(10) < 0.35 {
		t.Errorf("TopMass(10) = %g, expected heavy head", m.TopMass(10))
	}
}

func TestZipfInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipfModel(0, 1) did not panic")
		}
	}()
	NewZipfModel(0, 1)
}
