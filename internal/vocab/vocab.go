// Package vocab provides the text substrate for the MnnFast
// reproduction: a word vocabulary with stable integer IDs, a tokenizer
// for bAbI-style text, and a Zipfian word-frequency model that stands in
// for the Corpus of Contemporary American English (COCA) word-frequency
// data the paper drives its embedding-cache experiment with (§5.4.2).
package vocab

import (
	"fmt"
	"sort"
	"strings"
)

// NilID is returned by Lookup for unknown words.
const NilID = -1

// Vocabulary maps words to dense integer IDs. ID 0 is reserved for the
// padding token so that fixed-width sentence encodings can zero-fill.
type Vocabulary struct {
	words map[string]int
	byID  []string
}

// PadToken is the reserved word at ID 0.
const PadToken = "<pad>"

// New returns a vocabulary containing only the padding token.
func New() *Vocabulary {
	v := &Vocabulary{words: make(map[string]int)}
	v.Add(PadToken)
	return v
}

// Add interns word and returns its ID, allocating a new ID for unseen
// words. Words are case-sensitive; callers normalize beforehand.
func (v *Vocabulary) Add(word string) int {
	if id, ok := v.words[word]; ok {
		return id
	}
	id := len(v.byID)
	v.words[word] = id
	v.byID = append(v.byID, word)
	return id
}

// Lookup returns the ID of word, or NilID if it was never added.
func (v *Vocabulary) Lookup(word string) int {
	if id, ok := v.words[word]; ok {
		return id
	}
	return NilID
}

// Word returns the word with the given ID. It panics on out-of-range
// IDs, which always indicate a programming error upstream.
func (v *Vocabulary) Word(id int) string {
	if id < 0 || id >= len(v.byID) {
		panic(fmt.Sprintf("vocab: Word(%d) out of range [0, %d)", id, len(v.byID)))
	}
	return v.byID[id]
}

// Size returns the number of interned words, including the pad token.
// This is the V dimension of the embedding matrix (ed×V in the paper).
func (v *Vocabulary) Size() int { return len(v.byID) }

// AddAll interns every word of every sentence and returns v for
// chaining.
func (v *Vocabulary) AddAll(sentences ...[]string) *Vocabulary {
	for _, s := range sentences {
		for _, w := range s {
			v.Add(w)
		}
	}
	return v
}

// Encode maps words to IDs, adding unknown words. It is the bag-of-words
// front end of the embedding operation.
func (v *Vocabulary) Encode(words []string) []int {
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = v.Add(w)
	}
	return ids
}

// EncodeStrict maps words to IDs and returns an error naming the first
// unknown word instead of growing the vocabulary. Inference paths use it
// so that a trained model's vocabulary stays frozen.
func (v *Vocabulary) EncodeStrict(words []string) ([]int, error) {
	ids := make([]int, len(words))
	for i, w := range words {
		id := v.Lookup(w)
		if id == NilID {
			return nil, fmt.Errorf("vocab: unknown word %q", w)
		}
		ids[i] = id
	}
	return ids, nil
}

// Words returns all interned words in ID order. The slice is a copy.
func (v *Vocabulary) Words() []string {
	out := make([]string, len(v.byID))
	copy(out, v.byID)
	return out
}

// Tokenize splits bAbI-style text into lower-case word tokens, treating
// '.', '?' and ',' as separators. It never returns empty tokens.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	fields := strings.FieldsFunc(s, func(r rune) bool {
		switch r {
		case ' ', '\t', '.', '?', ',', '!', '\n', '\r':
			return true
		}
		return false
	})
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// SortedByWord returns the vocabulary's words in lexicographic order;
// useful for stable debugging output.
func (v *Vocabulary) SortedByWord() []string {
	out := v.Words()
	sort.Strings(out)
	return out
}
