package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Histograms follow the standard
// convention: cumulative <name>_bucket{le="…"} counts with bounds in
// seconds, then <name>_sum (seconds) and <name>_count. Metrics of one
// family share a single HELP/TYPE header, so same-family metrics should
// be registered consecutively.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]any(nil), r.metrics...)
	r.mu.Unlock()

	lastFamily := ""
	for _, m := range metrics {
		var err error
		switch m := m.(type) {
		case *Counter:
			err = writeScalar(w, &m.m, "counter", m.Value(), &lastFamily)
		case *Gauge:
			err = writeScalar(w, &m.m, "gauge", m.Value(), &lastFamily)
		case *funcMetric:
			typ := "gauge"
			if m.counter {
				typ = "counter"
			}
			err = writeScalar(w, &m.m, typ, m.fn(), &lastFamily)
		case *Histogram:
			err = writeHistogram(w, m, &lastFamily)
		case *SizeHistogram:
			err = writeSizeHistogram(w, m, &lastFamily)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, m *meta, typ string, lastFamily *string) error {
	if m.name == *lastFamily {
		return nil
	}
	*lastFamily = m.name
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typ)
	return err
}

func writeScalar(w io.Writer, m *meta, typ string, v int64, lastFamily *string) error {
	if err := writeHeader(w, m, typ, lastFamily); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels(""), v)
	return err
}

// seconds renders a nanosecond quantity as a Prometheus seconds float.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

func writeHistogram(w io.Writer, h *Histogram, lastFamily *string) error {
	if err := writeHeader(w, &h.m, "histogram", lastFamily); err != nil {
		return err
	}
	s := h.Snapshot()
	var cum int64
	for i := 0; i < NumBuckets-1; i++ {
		cum += s.Buckets[i]
		le := `le="` + seconds(BucketUpperNS(i)) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.m.name, h.m.labels(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.m.name, h.m.labels(`le="+Inf"`), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.m.name, h.m.labels(""), seconds(s.SumNS)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.m.name, h.m.labels(""), s.Count)
	return err
}

// writeSizeHistogram renders a count histogram: the le bounds are plain
// sizes (1, 2, 4, …) and the sum is an integer, not seconds.
func writeSizeHistogram(w io.Writer, h *SizeHistogram, lastFamily *string) error {
	if err := writeHeader(w, &h.m, "histogram", lastFamily); err != nil {
		return err
	}
	s := h.Snapshot()
	var cum int64
	for i := 0; i < NumSizeBuckets-1; i++ {
		cum += s.Buckets[i]
		le := `le="` + strconv.FormatInt(SizeBucketUpper(i), 10) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.m.name, h.m.labels(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.m.name, h.m.labels(`le="+Inf"`), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", h.m.name, h.m.labels(""), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.m.name, h.m.labels(""), s.Count)
	return err
}

// Snapshot is a point-in-time copy of a whole registry, keyed by metric
// identity (name plus rendered label pair). It serializes to JSON for
// the /v1/statz endpoint and subtracts for before/after diffs.
type Snapshot struct {
	Counters   map[string]int64                 `json:"counters"`
	Gauges     map[string]int64                 `json:"gauges"`
	Histograms map[string]HistogramSnapshot     `json:"histograms"`
	Sizes      map[string]SizeHistogramSnapshot `json:"sizes,omitempty"`
}

// Snapshot captures every registered metric. Func metrics are collected
// as gauges or counters per their exported type.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]any(nil), r.metrics...)
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Sizes:      make(map[string]SizeHistogramSnapshot),
	}
	for _, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			s.Counters[m.m.id()] = m.Value()
		case *Gauge:
			s.Gauges[m.m.id()] = m.Value()
		case *funcMetric:
			if m.counter {
				s.Counters[m.m.id()] = m.fn()
			} else {
				s.Gauges[m.m.id()] = m.fn()
			}
		case *Histogram:
			s.Histograms[m.m.id()] = m.Snapshot()
		case *SizeHistogram:
			s.Sizes[m.m.id()] = m.Snapshot()
		}
	}
	return s
}

// Sub returns the interval view s − prev: counters and histograms are
// differenced (missing previous entries count as zero), gauges keep
// their current values (an instantaneous reading has no meaningful
// delta).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Sizes:      make(map[string]SizeHistogramSnapshot, len(s.Sizes)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		d.Histograms[k] = v.Sub(prev.Histograms[k])
	}
	for k, v := range s.Sizes {
		d.Sizes[k] = v.Sub(prev.Sizes[k])
	}
	return d
}
