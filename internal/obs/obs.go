// Package obs is the runtime observability core: atomic counters,
// gauges, and fixed-bucket log-spaced latency histograms whose hot-path
// operations (Observe, Inc, Add) are lock-free and allocation-free, so
// the serving stack can account for every request without perturbing
// the zero-allocation inference runtime it measures.
//
// The package is dependency-free (stdlib only) and deliberately small:
// metrics register into a Registry at construction time, the hot path
// only touches sync/atomic, and everything else — Prometheus text
// exposition, JSON snapshots, snapshot diffing, and a scrape parser for
// clients — happens off the hot path.
//
// The paper's evaluation method is per-stage accounting (embedding vs.
// inference time, zero-skip ratios, embedding-cache hit rates); this
// package is the serving-side realization of that discipline.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// meta identifies a metric: a family name plus at most one label pair,
// or — for info gauges — a pre-rendered multi-label set. Metrics of the
// same family (same name, same label key, different label values) share
// one HELP/TYPE header in the Prometheus output.
type meta struct {
	name, help         string
	labelKey, labelVal string
	// multi, when non-empty, is a pre-rendered label set
	// (`k1="v1",k2="v2"`) that replaces labelKey/labelVal — the
	// info-gauge case (build metadata) where one series carries several
	// constant labels. Rendered once at registration; collection never
	// formats labels.
	multi string
}

// id renders the unique identity of a metric, e.g.
// mnnfast_stage_duration_seconds{stage="embed"}.
func (m *meta) id() string {
	if m.multi != "" {
		return m.name + "{" + m.multi + "}"
	}
	if m.labelKey == "" {
		return m.name
	}
	return m.name + "{" + m.labelKey + `="` + m.labelVal + `"}`
}

// labels renders extra label pairs joined onto the metric's own label
// set, for bucket lines: labels(`le="0.001"`) → {stage="embed",le="0.001"}.
func (m *meta) labels(extra string) string {
	if m.multi != "" {
		if extra == "" {
			return "{" + m.multi + "}"
		}
		return "{" + m.multi + "," + extra + "}"
	}
	switch {
	case m.labelKey == "" && extra == "":
		return ""
	case m.labelKey == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + m.labelKey + `="` + m.labelVal + `"}`
	}
	return "{" + m.labelKey + `="` + m.labelVal + `",` + extra + "}"
}

// Counter is a monotonically increasing atomic counter. Inc and Add are
// lock-free and allocation-free.
type Counter struct {
	m meta
	v atomic.Int64
}

// Inc adds 1.
//
//mnnfast:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
//
//mnnfast:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric family name.
func (c *Counter) Name() string { return c.m.name }

// Gauge is an atomic instantaneous value. Set and Add are lock-free and
// allocation-free.
type Gauge struct {
	m meta
	v atomic.Int64
}

// Set stores v.
//
//mnnfast:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative n decrements).
//
//mnnfast:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric family name.
func (g *Gauge) Name() string { return g.m.name }

// funcMetric evaluates a callback at collection time — for values owned
// elsewhere (session-map size, tensor pool dispatch counters).
type funcMetric struct {
	m       meta
	counter bool // exported TYPE: counter instead of gauge
	fn      func() int64
}

// Registry holds an ordered set of metrics and renders them as
// Prometheus text or JSON snapshots. Registration is cheap but not
// hot-path; it normally happens once at server construction.
type Registry struct {
	mu      sync.Mutex
	metrics []any // *Counter | *Gauge | *funcMetric | *Histogram, in registration order
	ids     map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]struct{})}
}

// add registers a metric, panicking on identity collision — duplicate
// registration is a programming error worth failing loudly on.
func (r *Registry) add(id string, m any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ids[id]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %s", id))
	}
	r.ids[id] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{m: meta{name: name, help: help}}
	r.add(c.m.id(), c)
	return c
}

// LabeledCounter registers a counter carrying one constant label pair.
// Counters of one family should be registered consecutively so the
// exposition groups them under a single HELP/TYPE header.
func (r *Registry) LabeledCounter(name, help, labelKey, labelVal string) *Counter {
	c := &Counter{m: meta{name: name, help: help, labelKey: labelKey, labelVal: labelVal}}
	r.add(c.m.id(), c)
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{m: meta{name: name, help: help}}
	r.add(g.m.id(), g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at collection
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := &funcMetric{m: meta{name: name, help: help}, fn: fn}
	r.add(f.m.id(), f)
}

// CounterFunc is GaugeFunc exported with TYPE counter — for monotonic
// totals owned outside the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := &funcMetric{m: meta{name: name, help: help}, counter: true, fn: fn}
	r.add(f.m.id(), f)
}

// LabeledCounterFunc is CounterFunc with one constant label pair — for
// per-worker totals owned outside the registry (e.g. scheduler slot
// counters). Funcs of one family should be registered consecutively so
// the exposition groups them under a single HELP/TYPE header.
func (r *Registry) LabeledCounterFunc(name, help, labelKey, labelVal string, fn func() int64) {
	f := &funcMetric{m: meta{name: name, help: help, labelKey: labelKey, labelVal: labelVal}, counter: true, fn: fn}
	r.add(f.m.id(), f)
}

// LabeledGaugeFunc is GaugeFunc with one constant label pair — the
// Prometheus info-gauge idiom (one series per label value, 1 on the
// active one). Funcs of one family should be registered consecutively
// so the exposition groups them under a single HELP/TYPE header.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey, labelVal string, fn func() int64) {
	f := &funcMetric{m: meta{name: name, help: help, labelKey: labelKey, labelVal: labelVal}, fn: fn}
	r.add(f.m.id(), f)
}

// InfoGaugeFunc registers a gauge carrying an arbitrary constant label
// set, given as alternating key/value strings — the Prometheus
// info-metric idiom (e.g. build_info{go_version="…",revision="…"} 1).
// Label values are escaped per the exposition format; keys must be
// valid label names. Panics on an odd kv count.
func (r *Registry) InfoGaugeFunc(name, help string, fn func() int64, kv ...string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: InfoGaugeFunc %s: odd label key/value count %d", name, len(kv)))
	}
	var b []byte
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		b = appendEscapedLabel(b, kv[i+1])
		b = append(b, '"')
	}
	f := &funcMetric{m: meta{name: name, help: help, multi: string(b)}, fn: fn}
	r.add(f.m.id(), f)
}

// appendEscapedLabel escapes a label value per the Prometheus text
// exposition format: backslash, double-quote, and newline.
func appendEscapedLabel(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// Histogram registers and returns a latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{m: meta{name: name, help: help}}
	r.add(h.m.id(), h)
	return h
}

// LabeledHistogram registers a histogram carrying one constant label
// pair (e.g. stage="embed"). Histograms of one family should be
// registered consecutively.
func (r *Registry) LabeledHistogram(name, help, labelKey, labelVal string) *Histogram {
	h := &Histogram{m: meta{name: name, help: help, labelKey: labelKey, labelVal: labelVal}}
	r.add(h.m.id(), h)
	return h
}
