package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	if c.Name() != "test_total" || g.Name() != "test_gauge" {
		t.Errorf("names = %q, %q", c.Name(), g.Name())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{BucketUpperNS(10), 10}, {BucketUpperNS(10) + 1, 11},
		{BucketUpperNS(NumBuckets - 2), NumBuckets - 2},
		{BucketUpperNS(NumBuckets-2) + 1, NumBuckets - 1},
		{1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		ns := c.ns
		if ns < 0 {
			ns = 0 // ObserveNS clamps before indexing
		}
		if got := bucketIndex(ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", ns, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latencies")
	// 1000 observations spread uniformly over 1µs..1ms.
	for i := 1; i <= 1000; i++ {
		h.ObserveNS(int64(i) * 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := int64(1000*1001/2) * 1000
	if h.SumNS() != wantSum {
		t.Errorf("sum = %d, want %d", h.SumNS(), wantSum)
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%d p90=%d p99=%d", p50, p90, p99)
	}
	// Factor-2 buckets bound the interpolation error: each estimate must
	// land within the true value's bucket neighborhood (±2×).
	if p50 < 250_000 || p50 > 1_000_000 {
		t.Errorf("p50 = %dns, want ~500µs within 2×", p50)
	}
	if p99 < 495_000 || p99 > 2_000_000 {
		t.Errorf("p99 = %dns, want ~990µs within 2×", p99)
	}
	if h.Quantile(1) < h.Quantile(0) {
		t.Error("q1 < q0")
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "")
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(2 * time.Hour) // beyond the last finite bucket
	if got := h.Quantile(0.5); got != BucketUpperNS(NumBuckets-2) {
		t.Errorf("overflow quantile = %d, want last finite bound %d", got, BucketUpperNS(NumBuckets-2))
	}
	if h.SumNS() != int64(2*time.Hour) {
		t.Errorf("sum = %d", h.SumNS())
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "")
	c.Add(3)
	h.ObserveNS(1000)
	before := r.Snapshot()
	c.Add(5)
	h.ObserveNS(2000)
	h.ObserveNS(4000)
	diff := r.Snapshot().Sub(before)
	if diff.Counters["c_total"] != 5 {
		t.Errorf("counter diff = %d, want 5", diff.Counters["c_total"])
	}
	hd := diff.Histograms["h_seconds"]
	if hd.Count != 2 || hd.SumNS != 6000 {
		t.Errorf("histogram diff = %+v, want count 2 sum 6000", hd)
	}
	if hd.MeanNS() != 3000 {
		t.Errorf("mean = %v, want 3000", hd.MeanNS())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.LabeledHistogram("s_seconds", "", "stage", "embed").ObserveNS(5000)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 2 {
		t.Errorf("counters = %v", back.Counters)
	}
	hs, ok := back.Histograms[`s_seconds{stage="embed"}`]
	if !ok || hs.Count != 1 {
		t.Errorf("histograms = %v", back.Histograms)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("req_total", "requests", "handler", "answer").Add(7)
	r.LabeledCounter("req_total", "requests", "handler", "story").Add(3)
	r.Gauge("inflight", "in-flight").Set(2)
	r.GaugeFunc("sessions", "live sessions", func() int64 { return 4 })
	r.CounterFunc("dispatches_total", "dispatches", func() int64 { return 9 })
	h := r.LabeledHistogram("stage_seconds", "stage latency", "stage", "embed")
	h.ObserveNS(300)  // bucket 1 (256 < 300 <= 512)
	h.ObserveNS(100)  // bucket 0
	h.ObserveNS(5000) // higher bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Family header appears exactly once per family.
	if got := strings.Count(text, "# TYPE req_total counter"); got != 1 {
		t.Errorf("req_total TYPE lines = %d, want 1\n%s", got, text)
	}
	if !strings.Contains(text, "# TYPE stage_seconds histogram") {
		t.Error("missing histogram TYPE")
	}
	if !strings.Contains(text, "# TYPE dispatches_total counter") {
		t.Error("CounterFunc not exported as counter")
	}

	sc, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if sc.Value(`req_total{handler="answer"}`) != 7 || sc.Value(`req_total{handler="story"}`) != 3 {
		t.Errorf("counters scraped wrong: %v", sc)
	}
	if sc.Value("inflight") != 2 || sc.Value("sessions") != 4 {
		t.Errorf("gauges scraped wrong")
	}
	if sc.Value(HistKey("stage_seconds", "count", `stage="embed"`)) != 3 {
		t.Errorf("histogram count scraped wrong: %v", sc)
	}
	wantSum := 5400.0 / 1e9
	if got := sc.Value(HistKey("stage_seconds", "sum", `stage="embed"`)); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}

	// Cumulative buckets are monotone and end at the count on +Inf.
	var prevCum float64
	for i := 0; i < NumBuckets-1; i++ {
		le := `stage="embed",le="` + seconds(BucketUpperNS(i)) + `"`
		cum := sc.Value(`stage_seconds_bucket{` + le + `}`)
		if cum < prevCum {
			t.Fatalf("bucket %d not cumulative: %v < %v", i, cum, prevCum)
		}
		prevCum = cum
	}
	if inf := sc.Value(`stage_seconds_bucket{stage="embed",le="+Inf"}`); inf != 3 {
		t.Errorf("+Inf bucket = %v, want 3", inf)
	}
}

func TestScrapeSub(t *testing.T) {
	a := Scrape{"x_total": 10, "y_total": 1}
	b := Scrape{"x_total": 25, "y_total": 1, "z_total": 4}
	d := b.Sub(a)
	if d["x_total"] != 15 || d["y_total"] != 0 || d["z_total"] != 4 {
		t.Errorf("diff = %v", d)
	}
}

func TestParseTextErrors(t *testing.T) {
	if _, err := ParseText(strings.NewReader("just_a_name\n")); err == nil {
		t.Error("line without value accepted")
	}
	if _, err := ParseText(strings.NewReader("name not_a_number\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
	s, err := ParseText(strings.NewReader("# comment\n\n  \nok_total 3\n"))
	if err != nil || s.Value("ok_total") != 3 {
		t.Errorf("comments/blank lines mishandled: %v %v", s, err)
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines; run under -race this is the lock-free-correctness check,
// and the totals must still balance.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "")
	c := r.Counter("conc_total", "")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNS(int64(w*1000 + i))
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent readers while writers run
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per || c.Value() != workers*per {
		t.Errorf("count = %d / %d, want %d", h.Count(), c.Value(), workers*per)
	}
	s := h.Snapshot()
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestHotPathAllocs asserts the acceptance criterion: Observe and
// counter/gauge increments allocate nothing.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := NewRegistry()
	h := r.Histogram("alloc_seconds", "")
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveNS(12345)
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
	}); allocs != 0 {
		t.Errorf("hot path allocates %v per run, want 0", allocs)
	}
}

func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i))
	}
}
