package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scrape is a flat view of one Prometheus text exposition: sample name
// (with its label set rendered exactly as emitted) → value. It is the
// client half of the snapshot/diff story: a load generator scrapes
// /v1/metrics before and after a run and subtracts to isolate what the
// run itself did on the server.
type Scrape map[string]float64

// ParseText parses Prometheus text exposition format as written by
// WritePrometheus (and by any conforming exporter): comment and blank
// lines are skipped, every other line is `name[{labels}] value`.
func ParseText(r io.Reader) (Scrape, error) {
	s := make(Scrape)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The value is the field after the last space; the key is
		// everything before it (label values never contain spaces in
		// our exposition).
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value in %q", line, text)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(text[cut+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %v", line, err)
		}
		s[strings.TrimSpace(text[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %v", err)
	}
	return s, nil
}

// Sub returns the per-sample difference s − prev; samples absent from
// prev diff against zero.
func (s Scrape) Sub(prev Scrape) Scrape {
	d := make(Scrape, len(s))
	for k, v := range s {
		d[k] = v - prev[k]
	}
	return d
}

// Value returns the sample with the exact key, or 0 when absent.
func (s Scrape) Value(key string) float64 { return s[key] }

// HistKey builds the key of a histogram sub-sample: HistKey("f", "sum",
// `stage="embed"`) → `f_sum{stage="embed"}`. An empty labels string
// drops the braces.
func HistKey(family, sample, labels string) string {
	if labels == "" {
		return family + "_" + sample
	}
	return family + "_" + sample + "{" + labels + "}"
}
