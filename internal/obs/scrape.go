package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a flat view of one Prometheus text exposition: sample name
// (with its label set rendered exactly as emitted) → value. It is the
// client half of the snapshot/diff story: a load generator scrapes
// /v1/metrics before and after a run and subtracts to isolate what the
// run itself did on the server.
type Scrape map[string]float64

// ParseText parses Prometheus text exposition format as written by
// WritePrometheus (and by any conforming exporter): comment and blank
// lines are skipped, every other line is `name[{labels}] value`.
func ParseText(r io.Reader) (Scrape, error) {
	s := make(Scrape)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The value is the field after the last space; the key is
		// everything before it (label values never contain spaces in
		// our exposition).
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value in %q", line, text)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(text[cut+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %v", line, err)
		}
		s[strings.TrimSpace(text[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %v", err)
	}
	return s, nil
}

// Sub returns the per-sample difference s − prev; samples absent from
// prev diff against zero.
func (s Scrape) Sub(prev Scrape) Scrape {
	d := make(Scrape, len(s))
	for k, v := range s {
		d[k] = v - prev[k]
	}
	return d
}

// Value returns the sample with the exact key, or 0 when absent.
func (s Scrape) Value(key string) float64 { return s[key] }

// HistKey builds the key of a histogram sub-sample: HistKey("f", "sum",
// `stage="embed"`) → `f_sum{stage="embed"}`. An empty labels string
// drops the braces.
func HistKey(family, sample, labels string) string {
	if labels == "" {
		return family + "_" + sample
	}
	return family + "_" + sample + "{" + labels + "}"
}

// Quantile reconstructs the q-th quantile (q in [0,1]) of a scraped
// histogram family from its cumulative `_bucket{le="…"}` samples,
// interpolating linearly within the containing bucket. labels, when
// non-empty, is the family's constant label pair rendered exactly as
// exposed (e.g. `stage="embed"`); the le pair is matched in either
// position. Works on diffed scrapes too, since Sub preserves the
// cumulative structure. Returns 0 when the family is absent or empty.
func (s Scrape) Quantile(family, labels string, q float64) float64 {
	type bound struct {
		le  float64
		cum float64
	}
	prefix := family + "_bucket{"
	var bounds []bound
	for k, v := range s {
		if !strings.HasPrefix(k, prefix) || !strings.HasSuffix(k, "}") {
			continue
		}
		var le string
		for _, pair := range strings.Split(k[len(prefix):len(k)-1], ",") {
			if rest, ok := strings.CutPrefix(pair, `le="`); ok {
				le = strings.TrimSuffix(rest, `"`)
			} else if labels == "" || pair != labels {
				le = ""
				break
			}
		}
		if le == "" {
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if le == "+Inf" {
			f, err = math.Inf(1), nil
		}
		if err != nil {
			continue
		}
		bounds = append(bounds, bound{le: f, cum: v})
	}
	if len(bounds) == 0 {
		return 0
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
	count := bounds[len(bounds)-1].cum
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * count
	if target < 1 {
		target = 1
	}
	prevLE, prevCum := 0.0, 0.0
	for i, b := range bounds {
		if b.cum >= target {
			if math.IsInf(b.le, 1) {
				return prevLE // floor, not an estimate
			}
			if b.cum == prevCum {
				return b.le
			}
			frac := (target - prevCum) / (b.cum - prevCum)
			if i == 0 {
				prevLE = 0
			}
			return prevLE + frac*(b.le-prevLE)
		}
		prevLE, prevCum = b.le, b.cum
	}
	return prevLE
}
