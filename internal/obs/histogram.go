package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram bucket scheme is fixed and log-spaced: NumBuckets-1
// finite buckets whose upper bounds double from 2^bucketMinShift ns
// (256 ns) up to 2^42 ns (≈73 min), plus one overflow (+Inf) bucket.
// Fixed buckets mean Observe is a shift, a clamp, and two atomic adds —
// no locks, no allocation, no per-histogram configuration to get wrong.
// Factor-2 spacing bounds the within-bucket quantile interpolation
// error at 2×, which is ample for stage breakdowns that span orders of
// magnitude.
const (
	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets     = 36
	bucketMinShift = 8
)

// BucketUpperNS returns the upper bound (inclusive, nanoseconds) of
// finite bucket i. Bucket NumBuckets-1 is the +Inf overflow bucket.
func BucketUpperNS(i int) int64 {
	return 1 << (bucketMinShift + i)
}

// bucketIndex maps an observation in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1<<bucketMinShift {
		return 0
	}
	b := bits.Len64(uint64(ns-1)) - bucketMinShift
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket log-spaced latency histogram. Observe is
// lock-free and allocation-free; quantile extraction and snapshots read
// the buckets without stopping writers (each bucket is individually
// atomic, so a concurrent snapshot is approximate by at most the
// observations in flight — fine for monitoring).
type Histogram struct {
	m       meta
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [NumBuckets]atomic.Int64

	// Slow-tail exemplar: the trace ID of a recent observation that
	// landed in (or within one bucket of) the slowest bucket seen, so a
	// dashboard can jump from "p99 is bad" to one concrete trace. The
	// three words are updated independently without a lock — an
	// exemplar may transiently pair one observation's bucket with
	// another's ID, which is fine for a debugging pointer.
	exBucket atomic.Int64 // bucket index + 1; 0 = no exemplar yet
	exNS     atomic.Int64
	exID     atomic.Uint64
}

// Observe records a duration.
//
//mnnfast:hotpath
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records a duration in nanoseconds. Negative values clamp
// to zero.
//
//mnnfast:hotpath
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

// ObserveNSExemplar is ObserveNS plus exemplar maintenance: when the
// observation lands within one bucket of the slowest bucket this
// histogram has seen, traceID is recorded as the exemplar for the slow
// tail. A zero traceID degrades to plain ObserveNS.
//
//mnnfast:hotpath
func (h *Histogram) ObserveNSExemplar(ns int64, traceID uint64) {
	h.ObserveNS(ns)
	if traceID == 0 {
		return
	}
	b := int64(bucketIndex(ns)) + 1
	cur := h.exBucket.Load()
	if b+1 < cur {
		return
	}
	if b > cur {
		h.exBucket.Store(b) // racy max — approximate by design
	}
	h.exNS.Store(ns)
	h.exID.Store(traceID)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the sum of all observations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.m.name }

// Quantile returns the q-th quantile (q in [0,1]) in nanoseconds,
// linearly interpolated within the containing bucket. It returns 0 for
// an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return quantileFromBuckets(&s.Buckets, s.Count, q)
}

// HistogramSnapshot is a point-in-time copy of a histogram with derived
// percentiles; snapshots subtract to give interval views.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	P50NS   int64             `json:"p50_ns"`
	P90NS   int64             `json:"p90_ns"`
	P99NS   int64             `json:"p99_ns"`
	P999NS  int64             `json:"p999_ns"`
	Buckets [NumBuckets]int64 `json:"-"`
	// Slow-tail exemplar (see ObserveNSExemplar): the low 64 bits of a
	// trace ID, as 16 hex digits — resolvable via GET /v1/traces/{id}.
	// Empty when the histogram never saw an exemplar observation.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
	ExemplarNS      int64  `json:"exemplar_ns,omitempty"`
}

// Snapshot copies the histogram state and computes percentiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.SumNS = h.sumNS.Load()
	if id := h.exID.Load(); id != 0 {
		s.ExemplarTraceID = hex16(id)
		s.ExemplarNS = h.exNS.Load()
	}
	s.fillQuantiles()
	return s
}

// hex16 renders v as exactly 16 lowercase hex digits.
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// Sub returns the interval view s − prev: the histogram of observations
// recorded between the two snapshots, with percentiles recomputed over
// the interval alone.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	d.SumNS = s.SumNS - prev.SumNS
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		d.Count += d.Buckets[i]
	}
	// The newer snapshot's exemplar carries over: exemplars are
	// pointers to recent traces, not interval statistics.
	d.ExemplarTraceID, d.ExemplarNS = s.ExemplarTraceID, s.ExemplarNS
	d.fillQuantiles()
	return d
}

// MeanNS returns the mean observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

func (s *HistogramSnapshot) fillQuantiles() {
	s.P50NS = quantileFromBuckets(&s.Buckets, s.Count, 0.50)
	s.P90NS = quantileFromBuckets(&s.Buckets, s.Count, 0.90)
	s.P99NS = quantileFromBuckets(&s.Buckets, s.Count, 0.99)
	s.P999NS = quantileFromBuckets(&s.Buckets, s.Count, 0.999)
}

// quantileFromBuckets walks the cumulative distribution to the bucket
// containing the target rank and interpolates linearly inside it. The
// +Inf bucket reports the last finite bound (a floor, not an estimate).
func quantileFromBuckets(buckets *[NumBuckets]int64, count int64, q float64) int64 {
	return quantileFromCounts(buckets[:], count, q, BucketUpperNS)
}

// quantileFromCounts is the bucket-walk shared by the latency and size
// histograms: buckets hold per-bucket counts, upper maps a finite
// bucket index to its inclusive upper bound, and the last bucket is
// treated as +Inf (reported as the last finite bound — a floor, not an
// estimate).
func quantileFromCounts(buckets []int64, count int64, q float64, upper func(int) int64) int64 {
	last := len(buckets) - 1
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= target {
			if i == last {
				return upper(last - 1)
			}
			lower := int64(0)
			if i > 0 {
				lower = upper(i - 1)
			}
			up := upper(i)
			frac := (target - cum) / float64(b)
			return lower + int64(frac*float64(up-lower))
		}
		cum = next
	}
	return upper(last - 1)
}
