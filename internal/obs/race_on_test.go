//go:build race

package obs

// raceEnabled reports whether the race detector is active. Allocation
// counts are not meaningful under -race instrumentation.
const raceEnabled = true
