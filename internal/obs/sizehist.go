package obs

import (
	"math/bits"
	"sync/atomic"
)

// The size-histogram bucket scheme mirrors the latency histogram but
// counts things instead of nanoseconds: NumSizeBuckets-1 finite buckets
// whose upper bounds double from 1 up to 2^(NumSizeBuckets-2), plus one
// overflow (+Inf) bucket. Batch sizes, queue lengths, and fan-outs all
// live comfortably inside 2^14; factor-2 spacing bounds the
// within-bucket quantile interpolation error at 2×.
const (
	// NumSizeBuckets is the fixed bucket count of every SizeHistogram.
	NumSizeBuckets = 16
)

// SizeBucketUpper returns the upper bound (inclusive) of finite bucket
// i. Bucket NumSizeBuckets-1 is the +Inf overflow bucket.
func SizeBucketUpper(i int) int64 {
	return 1 << i
}

// sizeBucketIndex maps a size observation to its bucket.
func sizeBucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len64(uint64(n - 1))
	if b > NumSizeBuckets-1 {
		return NumSizeBuckets - 1
	}
	return b
}

// SizeHistogram is a fixed-bucket log-spaced histogram of counts
// (batch sizes, queue lengths). Observe is lock-free and
// allocation-free, like Histogram.
type SizeHistogram struct {
	m       meta
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumSizeBuckets]atomic.Int64
}

// Observe records a size. Negative values clamp to zero.
//
//mnnfast:hotpath
func (h *SizeHistogram) Observe(n int64) {
	if n < 0 {
		n = 0
	}
	h.buckets[sizeBucketIndex(n)].Add(1)
	h.sum.Add(n)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *SizeHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed sizes.
func (h *SizeHistogram) Sum() int64 { return h.sum.Load() }

// Name returns the metric family name.
func (h *SizeHistogram) Name() string { return h.m.name }

// Quantile returns the q-th quantile (q in [0,1]) as a size: the
// smallest bucket upper bound covering the target rank. Sizes are
// integers, so no sub-bucket interpolation is attempted — the answer is
// exact for power-of-two sizes and conservative within 2× otherwise.
// It returns 0 for an empty histogram.
func (h *SizeHistogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return sizeQuantile(s.Buckets[:], s.Count, q)
}

// sizeQuantile walks the cumulative distribution to the first bucket
// covering the target rank and reports its upper bound. The +Inf bucket
// reports the last finite bound (a floor, not an estimate).
func sizeQuantile(buckets []int64, count int64, q float64) int64 {
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, b := range buckets {
		cum += float64(b)
		if cum >= target {
			if i == len(buckets)-1 {
				return SizeBucketUpper(len(buckets) - 2)
			}
			return SizeBucketUpper(i)
		}
	}
	return SizeBucketUpper(len(buckets) - 2)
}

// SizeHistogramSnapshot is a point-in-time copy of a size histogram
// with derived percentiles; snapshots subtract to give interval views.
type SizeHistogramSnapshot struct {
	Count   int64                 `json:"count"`
	Sum     int64                 `json:"sum"`
	P50     int64                 `json:"p50"`
	P90     int64                 `json:"p90"`
	P99     int64                 `json:"p99"`
	Buckets [NumSizeBuckets]int64 `json:"-"`
}

// Snapshot copies the histogram state and computes percentiles.
func (h *SizeHistogram) Snapshot() SizeHistogramSnapshot {
	var s SizeHistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	s.fillQuantiles()
	return s
}

// Sub returns the interval view s − prev with percentiles recomputed
// over the interval alone.
func (s SizeHistogramSnapshot) Sub(prev SizeHistogramSnapshot) SizeHistogramSnapshot {
	var d SizeHistogramSnapshot
	d.Sum = s.Sum - prev.Sum
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		d.Count += d.Buckets[i]
	}
	d.fillQuantiles()
	return d
}

// Mean returns the mean observed size (0 when empty).
func (s SizeHistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (s *SizeHistogramSnapshot) fillQuantiles() {
	s.P50 = sizeQuantile(s.Buckets[:], s.Count, 0.50)
	s.P90 = sizeQuantile(s.Buckets[:], s.Count, 0.90)
	s.P99 = sizeQuantile(s.Buckets[:], s.Count, 0.99)
}

// SizeHistogram registers and returns a size histogram.
func (r *Registry) SizeHistogram(name, help string) *SizeHistogram {
	h := &SizeHistogram{m: meta{name: name, help: help}}
	r.add(h.m.id(), h)
	return h
}

// LabeledSizeHistogram registers a size histogram carrying one constant
// label pair. Histograms of one family should be registered
// consecutively.
func (r *Registry) LabeledSizeHistogram(name, help, labelKey, labelVal string) *SizeHistogram {
	h := &SizeHistogram{m: meta{name: name, help: help, labelKey: labelKey, labelVal: labelVal}}
	r.add(h.m.id(), h)
	return h
}
