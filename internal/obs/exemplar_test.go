package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestObserveNSExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "t")

	// Zero trace ID degrades to a plain observation.
	h.ObserveNSExemplar(1000, 0)
	if s := h.Snapshot(); s.Count != 1 || s.ExemplarTraceID != "" {
		t.Fatalf("zero-ID observation recorded an exemplar: %+v", s)
	}

	// A slow observation installs the exemplar.
	h.ObserveNSExemplar(1_000_000, 0xdeadbeef)
	s := h.Snapshot()
	if s.ExemplarTraceID != "00000000deadbeef" || s.ExemplarNS != 1_000_000 {
		t.Fatalf("exemplar = %q/%d", s.ExemplarTraceID, s.ExemplarNS)
	}

	// A much faster observation must not displace the slow exemplar.
	h.ObserveNSExemplar(500, 0x1111)
	if s := h.Snapshot(); s.ExemplarTraceID != "00000000deadbeef" {
		t.Fatalf("fast observation displaced the slow exemplar: %q", s.ExemplarTraceID)
	}

	// An observation within one bucket of the max refreshes it (the
	// exemplar tracks recent members of the slow tail, not the
	// all-time max alone).
	h.ObserveNSExemplar(900_000, 0x2222)
	if s := h.Snapshot(); s.ExemplarTraceID != "0000000000002222" {
		t.Fatalf("near-max observation did not refresh the exemplar: %q", s.ExemplarTraceID)
	}

	// The newer snapshot's exemplar carries through Sub.
	prev := HistogramSnapshot{}
	if d := h.Snapshot().Sub(prev); d.ExemplarTraceID != "0000000000002222" {
		t.Fatalf("Sub dropped the exemplar: %q", d.ExemplarTraceID)
	}
}

func TestExemplarAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "t")
	allocs := testing.AllocsPerRun(200, func() {
		h.ObserveNSExemplar(12345, 42)
	})
	if allocs != 0 {
		t.Fatalf("ObserveNSExemplar allocated %.1f/op, want 0", allocs)
	}
}

func TestInfoGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.InfoGaugeFunc("test_build_info", "t", func() int64 { return 1 },
		"go_version", "go1.24",
		"revision", `ab"c\d`+"\n")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `test_build_info{go_version="go1.24",revision="ab\"c\\d\n"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}

	// Round-trips through the scrape parser.
	sc, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for k, v := range sc {
		if strings.HasPrefix(k, "test_build_info{") && v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrape did not find the info gauge: %v", sc)
	}
}

func TestInfoGaugeFuncOddKVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv count did not panic")
		}
	}()
	NewRegistry().InfoGaugeFunc("x", "t", func() int64 { return 1 }, "lonely")
}
