package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSizeBucketIndex(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16384, 14}, {16385, 15}, {1 << 40, NumSizeBuckets - 1},
	}
	for _, c := range cases {
		if got := sizeBucketIndex(c.n); got != c.want {
			t.Errorf("sizeBucketIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Every finite bucket's upper bound must land in its own bucket.
	for i := 0; i < NumSizeBuckets-1; i++ {
		if got := sizeBucketIndex(SizeBucketUpper(i)); got != i {
			t.Errorf("bound %d lands in bucket %d, want %d", SizeBucketUpper(i), got, i)
		}
	}
}

func TestSizeHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("test_batch_size", "batch sizes")
	// 100 flushes of size 8: p50 must land in the (4, 8] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	if h.Count() != 100 || h.Sum() != 800 {
		t.Fatalf("count=%d sum=%d, want 100/800", h.Count(), h.Sum())
	}
	if p50 := h.Quantile(0.50); p50 != 8 {
		t.Errorf("p50 = %d, want 8", p50)
	}
	s := h.Snapshot()
	if s.Mean() != 8 {
		t.Errorf("mean = %v, want 8", s.Mean())
	}

	// Interval view: 50 more flushes of size 1 dominate the diff.
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(1)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 50 || d.Sum != 50 || d.P50 != 1 {
		t.Errorf("diff = %+v, want count 50 sum 50 p50 1", d)
	}
}

func TestSizeHistogramExpositionAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("test_sizes", "sizes under test")
	for i := 0; i < 10; i++ {
		h.Observe(4)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`test_sizes_bucket{le="1"} 0`,
		`test_sizes_bucket{le="4"} 10`,
		`test_sizes_bucket{le="+Inf"} 10`,
		"test_sizes_sum 40",
		"test_sizes_count 10",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Round-trip through the scrape parser and reconstruct the median.
	sc, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	p50 := sc.Quantile("test_sizes", "", 0.50)
	if p50 <= 2 || p50 > 4 {
		t.Errorf("scraped p50 = %v, want in (2, 4]", p50)
	}

	// JSON snapshot carries the size histogram with percentiles.
	snap := r.Snapshot()
	ss, ok := snap.Sizes["test_sizes"]
	if !ok {
		t.Fatalf("snapshot missing size histogram: %+v", snap.Sizes)
	}
	if ss.Count != 10 || ss.Sum != 40 {
		t.Errorf("snapshot = %+v, want count 10 sum 40", ss)
	}
}

func TestScrapeQuantileLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.LabeledSizeHistogram("test_fam", "labeled sizes", "kind", "a")
	other := r.LabeledSizeHistogram("test_fam", "labeled sizes", "kind", "b")
	for i := 0; i < 20; i++ {
		h.Observe(16)
		other.Observe(1)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	pa := sc.Quantile("test_fam", `kind="a"`, 0.5)
	pb := sc.Quantile("test_fam", `kind="b"`, 0.5)
	if pa <= 8 || pa > 16 {
		t.Errorf("kind=a p50 = %v, want in (8, 16]", pa)
	}
	// Scrape.Quantile interpolates within the bucket, so an all-1s
	// histogram reconstructs to somewhere in (0, 1].
	if pb <= 0 || pb > 1 {
		t.Errorf("kind=b p50 = %v, want in (0, 1]", pb)
	}
	if got := sc.Quantile("test_missing", "", 0.5); got != 0 {
		t.Errorf("missing family quantile = %v, want 0", got)
	}
}

func TestScrapeQuantileLatencyHistogram(t *testing.T) {
	// The reconstruction must also work on the seconds-bounded latency
	// histograms, within the factor-2 bucket error.
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency")
	for i := 0; i < 100; i++ {
		h.ObserveNS(1_000_000) // 1ms
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	p50 := sc.Quantile("test_lat_seconds", "", 0.5)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Errorf("p50 = %v s, want ~0.001 within one bucket", p50)
	}
}

// TestSizeHistogramObserveAllocs: Observe sits on the batcher's flush
// path (one call per batch) and must allocate nothing.
func TestSizeHistogramObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := NewRegistry()
	h := r.SizeHistogram("alloc_batch_size", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(17)
	}); allocs != 0 {
		t.Errorf("SizeHistogram.Observe allocates %v per call, want 0", allocs)
	}
}
