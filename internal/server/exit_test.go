package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"mnnfast/internal/babi"
	"mnnfast/internal/batcher"
	"mnnfast/internal/memnn"
	"mnnfast/internal/vocab"
)

// stepClock is a deterministic batcher.Clock: time moves only when the
// test advances it, so flush timing never depends on the wall clock.
type stepClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*stepTimer
}

type stepTimer struct {
	ch    chan time.Time
	at    time.Time
	fired bool
}

func newStepClock() *stepClock { return &stepClock{now: time.Unix(2000, 0)} }

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) NewTimer(d time.Duration) batcher.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &stepTimer{ch: make(chan time.Time, 1), at: c.now.Add(d)}
	c.timers = append(c.timers, t)
	return t
}

func (t *stepTimer) C() <-chan time.Time { return t.ch }
func (t *stepTimer) Stop() bool          { return true }

// gatedFixture picks an exit threshold that splits the test stories'
// questions into both outcomes — some exiting after hop 1, some running
// every hop — so the batches below genuinely mix shed and full-path
// questions. Selection runs the real model on the vectorized pairs.
func gatedFixture(t *testing.T, s *Server, stories map[string][]string, questions []string) memnn.ExitPolicy {
	t.Helper()
	var exs []memnn.Example
	for _, sents := range stories {
		tok := make([][]string, len(sents))
		for i, raw := range sents {
			tok[i] = vocab.Tokenize(raw)
		}
		ex, err := s.corpus.VectorizeStory(babi.Story{Sentences: tok})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range questions {
			qIDs, err := s.corpus.Vocab.EncodeStrict(vocab.Tokenize(q))
			if err != nil {
				t.Fatal(err)
			}
			exs = append(exs, memnn.Example{Sentences: ex.Sentences, Question: qIDs})
		}
	}
	for _, th := range []float32{0.2, 0.4, 0.6, 0.8, 0.95} {
		policy := memnn.ExitPolicy{Metric: memnn.ExitMargin, Threshold: th, MinHops: 1}
		var f memnn.Forward
		shed, full := false, false
		for _, ex := range exs {
			fw := s.model.ApplyGated(ex, s.SkipThreshold, policy, &f, nil, nil)
			if fw.ExitHop < s.model.Cfg.Hops {
				shed = true
			} else {
				full = true
			}
		}
		if shed && full {
			return policy
		}
	}
	t.Fatal("no margin threshold splits the fixture questions into shed and full-path outcomes")
	return memnn.ExitPolicy{}
}

// TestBatchedGatedEquivalence is the batch-shedding acceptance test at
// the server level: a flush mixing early-exit and full-hop questions
// (driven by a fake clock, flushing on batch size alone) must return
// response bodies byte-identical to an unbatched server running the
// same gate — and the exit metrics must show both outcomes.
func TestBatchedGatedEquivalence(t *testing.T) {
	base := testServer(t)
	stories := map[string][]string{
		"gA": {"john went to the kitchen", "mary went to the garden"},
		"gB": {"john went to the garden"},
		"gC": {"mary went to the kitchen", "john went to the garden", "mary went to the garden"},
	}
	questions := []string{"where is john?", "where is mary?"}
	policy := gatedFixture(t, base, stories, questions)

	plain, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	plain.ExitPolicy = policy
	batched, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	batched.ExitPolicy = policy
	// A fake clock plus an hour-long MaxWait means a flush can only
	// happen when the batch fills — every run coalesces all six answers
	// into exactly one mixed flush.
	batched.EnableBatching(BatchOptions{MaxBatch: 6, MaxWait: time.Hour, Clock: newStepClock()})
	defer batched.Close()

	seed := func(s *Server) {
		h := s.Handler()
		for sess, sents := range stories {
			body, _ := json.Marshal(StoryRequest{Sentences: sents})
			req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
			req.Header.Set("X-Session", sess)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("seeding %s: %d %s", sess, rec.Code, rec.Body.String())
			}
		}
	}
	seed(plain)
	seed(batched)

	plainH := plain.Handler()
	baseline := make(map[string]string)
	for sess := range stories {
		for _, q := range questions {
			rec := httptest.NewRecorder()
			plainH.ServeHTTP(rec, answerReq(sess, q))
			if rec.Code != http.StatusOK {
				t.Fatalf("baseline %s/%q: %d %s", sess, q, rec.Code, rec.Body.String())
			}
			baseline[sess+"|"+q] = rec.Body.String()
		}
	}

	// Six concurrent answers — one per (session, question) pair — fill
	// the batch exactly.
	h := batched.Handler()
	type result struct {
		key  string
		code int
		body string
	}
	results := make(chan result, 6)
	var wg sync.WaitGroup
	for sess := range stories {
		for _, q := range questions {
			wg.Add(1)
			go func(sess, q string) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, answerReq(sess, q))
				results <- result{sess + "|" + q, rec.Code, rec.Body.String()}
			}(sess, q)
		}
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", r.key, r.code, r.body)
		}
		if r.body != baseline[r.key] {
			t.Errorf("%s: batched gated body %q != unbatched gated %q", r.key, r.body, baseline[r.key])
		}
	}

	sc := scrape(t, batched)
	if got := sc.Value("mnnfast_exit_hop_count"); got != 6 {
		t.Errorf("exit-hop observations = %v, want 6 (one per gated answer)", got)
	}
	var exits float64
	for h := 1; h <= base.model.Cfg.Hops; h++ {
		exits += sc.Value(fmt.Sprintf("mnnfast_early_exits_total{hop=%q}", strconv.Itoa(h)))
	}
	if exits < 1 {
		t.Errorf("early exits = %v, want >= 1 (the fixture guarantees a mixed flush)", exits)
	}
	if got := sc.Value("mnnfast_exit_hop_sum"); got <= exits || got >= 6*float64(base.model.Cfg.Hops) {
		t.Errorf("exit-hop sum = %v with %v early exits: a mixed flush must land strictly between all-exit and no-exit", got, exits)
	}
}

// TestBatchedGatedAbandoned504 extends the deadline test to the gated
// path: an answer whose context ends while queued behind a wedged gated
// flush still gets 504, is never recycled, and the answers that do land
// stay byte-identical to the unbatched gated baseline. Runs under -race
// in CI, which is what "abandoned items stay race-free" means here.
func TestBatchedGatedAbandoned504(t *testing.T) {
	base := testServer(t)
	policy := memnn.ExitPolicy{Metric: memnn.ExitMargin, Threshold: 0.6, MinHops: 1}

	plain, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	plain.ExitPolicy = policy
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	s.ExitPolicy = policy
	s.EnableBatching(BatchOptions{MaxBatch: 1, MaxWait: 2 * time.Millisecond, QueueDepth: 4})
	defer s.Close()
	h := s.Handler()

	story := []string{"mary went to the garden", "john went to the kitchen"}
	for _, srv := range []*Server{plain, s} {
		body, _ := json.Marshal(StoryRequest{Sentences: story})
		req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
		req.Header.Set("X-Session", "g504")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("story: %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, answerReq("g504", "where is mary?"))
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline: %d %s", rec.Code, rec.Body.String())
	}
	want := rec.Body.String()

	sess := s.session(answerReq("g504", ""))
	sess.mu.Lock() // wedge the dispatcher on the first answer

	first := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, answerReq("g504", "where is mary?"))
	}()
	waitForCond(t, "first answer collected", func() bool {
		return scrape(t, s).Value("mnnfast_batch_queue_wait_seconds_count") == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	doomed := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(doomed, answerReq("g504", "where is mary?").WithContext(ctx))
	}()
	waitForCond(t, "second answer queued", func() bool { return s.batch.QueueLen() == 1 })
	cancel()
	<-done
	if doomed.Code != http.StatusGatewayTimeout {
		t.Fatalf("canceled-in-queue gated request: %d %s, want 504", doomed.Code, doomed.Body.String())
	}

	sess.mu.Unlock()
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("first gated request: %d %s, want 200", first.Code, first.Body.String())
	}
	if first.Body.String() != want {
		t.Errorf("gated batched body %q != unbatched gated %q", first.Body.String(), want)
	}
}
