package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mnnfast/internal/obs"
	"mnnfast/internal/tensor"
)

func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMetricsEndpoint exercises the acceptance criterion: after serving
// answers, GET /v1/metrics returns parseable Prometheus text containing
// the stage histograms, skip counters, embedding-cache counters, and
// the in-flight gauge — with values consistent with the traffic served.
func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()

	post(t, ts, "/v1/story", "obs", StoryRequest{Reset: true,
		Sentences: []string{"john went to the kitchen", "mary went to the garden"}})
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts, "/v1/answer", "obs", AnswerRequest{Question: "where is john?"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer status %d", resp.StatusCode)
		}
	}

	resp, body := getBody(t, ts, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	sc, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("metrics output does not parse: %v", err)
	}

	if v := sc.Value(`mnnfast_http_requests_total{handler="answer"}`); v < 3 {
		t.Errorf("answer requests = %v, want >= 3", v)
	}
	for _, stage := range []string{"vectorize", "embed", "attention", "output"} {
		count := sc.Value(obs.HistKey("mnnfast_stage_duration_seconds", "count", `stage="`+stage+`"`))
		sum := sc.Value(obs.HistKey("mnnfast_stage_duration_seconds", "sum", `stage="`+stage+`"`))
		if count <= 0 {
			t.Errorf("stage %s count = %v, want > 0", stage, count)
		}
		if sum < 0 {
			t.Errorf("stage %s sum = %v", stage, sum)
		}
	}
	if sc.Value("mnnfast_total_rows_total") <= 0 {
		t.Error("total_rows_total not populated")
	}
	if _, ok := sc["mnnfast_skipped_rows_total"]; !ok {
		t.Error("skipped_rows_total missing")
	}
	if _, ok := sc["mnnfast_requests_in_flight"]; !ok {
		t.Error("requests_in_flight missing")
	}
	// 3 answers on one unchanged story: 1 miss, 2 hits.
	if hits := sc.Value("mnnfast_embedding_cache_hits_total"); hits < 2 {
		t.Errorf("cache hits = %v, want >= 2", hits)
	}
	if misses := sc.Value("mnnfast_embedding_cache_misses_total"); misses < 1 {
		t.Errorf("cache misses = %v, want >= 1", misses)
	}
	if sessions := sc.Value("mnnfast_sessions"); sessions < 1 {
		t.Errorf("sessions gauge = %v, want >= 1", sessions)
	}
	// Kernel dispatch info gauge: one series per available tier, exactly
	// one of them (the active tier) set to 1.
	var active int
	for _, tier := range tensor.KernelTiers() {
		key := `mnnfast_kernel_tier{tier="` + tier + `"}`
		v, ok := sc[key]
		if !ok {
			t.Errorf("%s missing from /v1/metrics", key)
			continue
		}
		if v == 1 {
			active++
			if tier != tensor.KernelTier() {
				t.Errorf("%s = 1 but active tier is %q", key, tensor.KernelTier())
			}
		}
	}
	if active != 1 {
		t.Errorf("kernel tier gauge has %d active series, want exactly 1", active)
	}
}

// TestStatzEndpoint checks the JSON snapshot decodes and carries
// percentile fields.
func TestStatzEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	post(t, ts, "/v1/story", "statz", StoryRequest{Reset: true,
		Sentences: []string{"john went to the kitchen"}})
	post(t, ts, "/v1/answer", "statz", AnswerRequest{Question: "where is john?"})

	resp, body := getBody(t, ts, "/v1/statz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statz status %d: %s", resp.StatusCode, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("statz not a snapshot: %v", err)
	}
	hs, ok := snap.Histograms[`mnnfast_stage_duration_seconds{stage="attention"}`]
	if !ok {
		t.Fatalf("attention stage missing from statz: %v", snap.Histograms)
	}
	if hs.Count <= 0 || hs.P50NS < 0 || hs.P999NS < hs.P50NS {
		t.Errorf("attention snapshot inconsistent: %+v", hs)
	}
}

// TestObservabilityMethodChecks: the GET-only endpoints reject other
// methods, matching the POST handlers' discipline.
func TestObservabilityMethodChecks(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/statz"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestEmbeddingCacheInvalidation: appending to the story forces a
// re-embed (miss), and repeated questions afterwards hit again; answers
// agree between the cached and freshly embedded paths.
func TestEmbeddingCacheInvalidation(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sess := "inval"

	hits0, miss0 := s.met.cacheHits.Value(), s.met.cacheMisses.Value()
	post(t, ts, "/v1/story", sess, StoryRequest{Reset: true,
		Sentences: []string{"john went to the kitchen"}})
	_, b1 := post(t, ts, "/v1/answer", sess, AnswerRequest{Question: "where is john?"})
	_, b2 := post(t, ts, "/v1/answer", sess, AnswerRequest{Question: "where is john?"})
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached answer differs from first answer: %s vs %s", b1, b2)
	}
	if s.met.cacheMisses.Value()-miss0 != 1 || s.met.cacheHits.Value()-hits0 != 1 {
		t.Errorf("after 2 answers: misses +%d hits +%d, want +1/+1",
			s.met.cacheMisses.Value()-miss0, s.met.cacheHits.Value()-hits0)
	}

	post(t, ts, "/v1/story", sess, StoryRequest{
		Sentences: []string{"john went to the garden"}})
	_, b3 := post(t, ts, "/v1/answer", sess, AnswerRequest{Question: "where is john?"})
	if s.met.cacheMisses.Value()-miss0 != 2 {
		t.Errorf("story append did not invalidate the cache: misses +%d, want +2",
			s.met.cacheMisses.Value()-miss0)
	}
	var ar AnswerResponse
	if err := json.Unmarshal(b3, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Sentences != 2 {
		t.Errorf("after append, sentences = %d, want 2", ar.Sentences)
	}
	if srvAcc > 0.9 && ar.Answer != "garden" {
		t.Errorf("after append, answer = %q, want garden (accuracy %.2f)", ar.Answer, srvAcc)
	}
}

// TestRequestIDAndAccessLog checks X-Request-ID propagation (supplied
// and generated) and the structured access log line.
func TestRequestIDAndAccessLog(t *testing.T) {
	s := testServer(t)
	var logBuf bytes.Buffer
	s.AccessLog = log.New(&logBuf, "", 0)
	defer func() { s.AccessLog = nil }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "test-id-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-id-42" {
		t.Errorf("request id not echoed: %q", got)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "req-") {
		t.Errorf("generated request id = %q, want req-<n>", got)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "request_id=test-id-42") ||
		!strings.Contains(logs, "path=/v1/healthz") ||
		!strings.Contains(logs, "status=200") {
		t.Errorf("access log missing fields:\n%s", logs)
	}
}

// TestErrorPathsCounted checks error responses land in the error
// counter and per-handler accounting covers unknown paths.
func TestErrorPathsCounted(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	errs0 := s.met.errors.Value()

	// bad JSON → 400
	resp, err := ts.Client().Post(ts.URL+"/v1/answer", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// unknown path → 404 from the mux, counted under handler="other"
	other0 := s.met.requests["other"].Value()
	resp, err = ts.Client().Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := s.met.errors.Value() - errs0; got < 2 {
		t.Errorf("error counter delta = %d, want >= 2", got)
	}
	if s.met.requests["other"].Value() != other0+1 {
		t.Errorf("unknown path not counted under other")
	}
}
