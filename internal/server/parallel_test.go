package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mnnfast/internal/obs"
)

// TestParallelServing wires the full stack: a server with batching and
// intra-query parallelism enabled answers identically to the serial
// server, and the scheduler counters surface in /v1/metrics.
func TestParallelServing(t *testing.T) {
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableParallelism(4); err != nil {
		t.Fatal(err)
	}
	// The model is shared across tests in this package: restore serial
	// inference before the pool closes.
	defer func() {
		base.model.SetParallel(nil)
		s.Close()
	}()
	if err := s.EnableParallelism(4); err == nil {
		t.Fatal("second EnableParallelism did not error")
	}
	s.EnableBatching(BatchOptions{MaxBatch: 4, MaxWait: 2 * time.Millisecond})

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, "/v1/story", "par", StoryRequest{Reset: true, Sentences: []string{
		"john went to the kitchen",
		"mary went to the garden",
		"john went to the garden",
	}})
	var want string
	for i := 0; i < 8; i++ {
		resp, body := post(t, ts, "/v1/answer", "par", AnswerRequest{Question: "where is john?"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer %d: status %d: %s", i, resp.StatusCode, body)
		}
		if i == 0 {
			want = string(body)
		} else if string(body) != want {
			t.Fatalf("answer %d: %s, first answer %s", i, body, want)
		}
	}

	resp, body := getBody(t, ts, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	sc, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("metrics output does not parse: %v", err)
	}
	if v := sc.Value("mnnfast_sched_workers"); v != 4 {
		t.Errorf("mnnfast_sched_workers = %v, want 4", v)
	}
	if sc.Value("mnnfast_sched_runs_total")+sc.Value("mnnfast_sched_serial_runs_total") == 0 {
		t.Error("scheduler run counters all zero after answering")
	}
	var chunks float64
	for i := 0; i < 4; i++ {
		chunks += sc.Value(`mnnfast_sched_worker_chunks_total{worker="` + string(rune('0'+i)) + `"}`)
	}
	if chunks == 0 {
		t.Error("no worker chunk counters recorded")
	}
}

func TestEnableParallelismValidation(t *testing.T) {
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableParallelism(0); err == nil {
		t.Error("EnableParallelism(0) did not error")
	}
}
