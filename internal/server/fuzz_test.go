package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fuzzPost feeds raw bytes to a handler and checks the decoder
// invariants every request body must satisfy: no panic, a status from
// the endpoint's documented set, and a well-formed JSON response.
func fuzzPost(t *testing.T, h http.Handler, path, session string, data []byte, allowed map[int]bool) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("X-Session", session)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !allowed[rec.Code] {
		t.Errorf("%s with body %q: unexpected status %d: %s", path, data, rec.Code, rec.Body.String())
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Errorf("%s with body %q: response is not JSON: %q", path, data, rec.Body.String())
	}
}

// FuzzStoryJSON fuzzes the POST /v1/story request decoder. Valid
// requests mutate the fuzz session, which is fine — the invariant under
// test is that no byte sequence can crash the decoder or escape the
// documented status set.
func FuzzStoryJSON(f *testing.F) {
	f.Add([]byte(`{"sentences":["john went to the kitchen"]}`))
	f.Add([]byte(`{"sentences":["john went to the kitchen"],"reset":true}`))
	f.Add([]byte(`{"sentences":[]}`))
	f.Add([]byte(`{"sentences":[""]}`))
	f.Add([]byte(`{"sentences":["xylophones are great"]}`))
	f.Add([]byte(`{"sentences":123}`))
	f.Add([]byte(`{"sentences":`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"sentences":["` + "\x00\xff" + `"]}`))

	s := testServer(f)
	h := s.Handler()
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, h, "/v1/story", "fuzz-story", data, allowed)
	})
}

// FuzzAnswerJSON fuzzes the POST /v1/answer request decoder, through
// both the unbatched and the batched handler tails.
func FuzzAnswerJSON(f *testing.F) {
	f.Add([]byte(`{"question":"where is john?"}`))
	f.Add([]byte(`{"question":""}`))
	f.Add([]byte(`{"question":"zorblax?"}`))
	f.Add([]byte(`{"question":123}`))
	f.Add([]byte(`{"question`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"question":"` + "\x7f\x00" + `"}`))

	base := testServer(f)
	plain, err := New(base.model, base.corpus)
	if err != nil {
		f.Fatal(err)
	}
	batched, err := New(base.model, base.corpus)
	if err != nil {
		f.Fatal(err)
	}
	batched.EnableBatching(BatchOptions{MaxBatch: 4})
	plainH, batchedH := plain.Handler(), batched.Handler()

	// No story is seeded: a well-formed in-vocabulary question reaches
	// the inference stage and gets the no-story 409.
	allowed := map[int]bool{
		http.StatusConflict:            true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, plainH, "/v1/answer", "fuzz-answer", data, allowed)
		fuzzPost(t, batchedH, "/v1/answer", "fuzz-answer", data, allowed)
	})
}
