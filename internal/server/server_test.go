package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

// trainedServer builds a server around a quickly trained single-fact
// model. Shared across tests via sync.Once because training costs a
// couple of seconds.
var (
	srvOnce sync.Once
	srv     *Server
	srvAcc  float64
)

func testServer(t testing.TB) *Server {
	t.Helper()
	srvOnce.Do(func() {
		opt := babi.GenOptions{Stories: 300, StoryLen: 8, People: 3, Locations: 3}
		d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(5)))
		train, test := d.Split(0.85)
		corpus := memnn.BuildCorpus(train, test, 0)
		model, err := memnn.NewModel(memnn.Config{
			Dim: 20, Hops: 2,
			Vocab:   corpus.Vocab.Size(),
			Answers: len(corpus.Answers),
			MaxSent: corpus.MaxSent,
		}, rand.New(rand.NewSource(5)))
		if err != nil {
			panic(err)
		}
		topt := memnn.DefaultTrainOptions()
		topt.Epochs = 30
		if _, err := model.Train(corpus.Train, topt); err != nil {
			panic(err)
		}
		srvAcc = model.Accuracy(corpus.Test, 0)
		srv, err = New(model, corpus)
		if err != nil {
			panic(err)
		}
	})
	return srv
}

func post(t *testing.T, ts *httptest.Server, path, session string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.Header.Set("X-Session", session)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New(nil, nil) succeeded")
	}
}

func TestHealthEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vocab == 0 || h.Hops != 2 {
		t.Errorf("health = %+v", h)
	}
}

func TestStoryThenAnswer(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/story", "", StoryRequest{
		Sentences: []string{
			"john went to the kitchen",
			"mary went to the garden",
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("story status %d: %s", resp.StatusCode, body)
	}
	var sr StoryResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sentences != 2 {
		t.Errorf("story size = %d, want 2", sr.Sentences)
	}

	resp, body = post(t, ts, "/v1/answer", "", AnswerRequest{Question: "where is mary?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var ar AnswerResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Sentences != 2 || ar.Answer == "" {
		t.Errorf("answer = %+v", ar)
	}
	// With a well-trained model the answer should usually be right;
	// require it only when the model trained well, to keep the test
	// robust to seed drift.
	if srvAcc > 0.9 && ar.Answer != "garden" {
		t.Errorf("answer = %q, want garden (model accuracy %.2f)", ar.Answer, srvAcc)
	}
}

func TestSessionIsolation(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()

	post(t, ts, "/v1/story", "alice", StoryRequest{Reset: true,
		Sentences: []string{"john went to the kitchen"}})
	post(t, ts, "/v1/story", "bob", StoryRequest{Reset: true,
		Sentences: []string{"john went to the garden", "mary went to the kitchen"}})

	_, body := post(t, ts, "/v1/answer", "alice", AnswerRequest{Question: "where is john?"})
	var ar AnswerResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Sentences != 1 {
		t.Errorf("alice sees %d sentences, want 1 (bob's story leaked)", ar.Sentences)
	}
}

func TestStoryReset(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	post(t, ts, "/v1/story", "r", StoryRequest{Sentences: []string{"john went to the kitchen"}})
	_, body := post(t, ts, "/v1/story", "r", StoryRequest{Reset: true,
		Sentences: []string{"mary went to the garden"}})
	var sr StoryResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sentences != 1 {
		t.Errorf("after reset story size = %d, want 1", sr.Sentences)
	}
}

func TestErrors(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()

	// Unknown word rejected without mutating the session.
	resp, body := post(t, ts, "/v1/story", "e", StoryRequest{
		Sentences: []string{"john went to the kitchen", "xylophones are great"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown word: status %d body %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts, "/v1/answer", "e", AnswerRequest{Question: "where is john?"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("answer with empty session: status %d, want 409 (rejected story must not persist)", resp.StatusCode)
	}

	// Empty question.
	post(t, ts, "/v1/story", "e", StoryRequest{Sentences: []string{"john went to the kitchen"}})
	resp, _ = post(t, ts, "/v1/answer", "e", AnswerRequest{Question: "   "})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question: status %d", resp.StatusCode)
	}

	// Malformed JSON.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/answer", strings.NewReader("{"))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = ts.Client().Get(ts.URL + "/v1/answer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET answer: status %d", resp.StatusCode)
	}
}

func TestConcurrentSessions(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := string(rune('a' + i))
			post(t, ts, "/v1/story", session, StoryRequest{Reset: true,
				Sentences: []string{"john went to the kitchen"}})
			resp, _ := post(t, ts, "/v1/answer", session, AnswerRequest{Question: "where is john?"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("session %s: status %d", session, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
}
