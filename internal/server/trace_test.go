package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mnnfast/internal/memnn"
	"mnnfast/internal/trace"
)

// newTracedServer wraps the shared trained model in a fresh Server with
// tracing enabled (SampleEvery 1 so every trace is retained).
func newTracedServer(t testing.TB, topt TraceOptions) *Server {
	t.Helper()
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	if topt.SampleEvery == 0 {
		topt.SampleEvery = 1
	}
	s.EnableTracing(topt)
	return s
}

// getJSON fetches path and decodes the response body into out.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

// spanNames flattens an exported span forest into a name set.
func spanNames(spans []*trace.ExportSpan, into map[string]int) {
	for _, sp := range spans {
		into[sp.Name]++
		spanNames(sp.Children, into)
	}
}

func TestTracingEndToEnd(t *testing.T) {
	s := newTracedServer(t, TraceOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, "/v1/story", "tr", map[string]any{
		"sentences": []string{"mary went to the kitchen"}, "reset": true,
	})

	// Answer with an inbound W3C trace context: the trace must join it.
	const inbound = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/answer",
		strings.NewReader(`{"question":"where is mary?"}`))
	req.Header.Set("X-Session", "tr")
	req.Header.Set("traceparent", inbound)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("X-Trace-ID = %q, want the inbound trace ID", traceID)
	}
	if tp := resp.Header.Get("traceparent"); !strings.HasPrefix(tp, "00-"+traceID+"-") {
		t.Fatalf("outbound traceparent %q does not carry trace ID %s", tp, traceID)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID header")
	}

	// Index lists the trace.
	var idx TraceIndexResponse
	getJSON(t, ts, "/v1/traces", &idx)
	if len(idx.Traces) == 0 {
		t.Fatal("trace index empty")
	}
	if idx.Stats.Retained == 0 {
		t.Fatalf("stats: %+v", idx.Stats)
	}

	// The span tree covers the full path: root handler → vectorize →
	// embed-story (first answer on this session) → infer → hops.
	var ex trace.Export
	if r := getJSON(t, ts, "/v1/traces/"+traceID, &ex); r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", r.StatusCode)
	}
	if ex.ID != traceID || ex.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("export identity: id=%s parent=%s", ex.ID, ex.ParentSpanID)
	}
	names := map[string]int{}
	spanNames(ex.Spans, names)
	for _, want := range []string{"answer", "vectorize", "embed-story", "infer", "hop", "output"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (got %v)", want, names)
		}
	}
	if names["hop"] != s.model.Cfg.Hops {
		t.Errorf("hop spans = %d, want %d", names["hop"], s.model.Cfg.Hops)
	}

	// Chrome export parses and carries the same span count.
	resp, err = ts.Client().Get(ts.URL + "/v1/traces/" + traceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var ce struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ce)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(ce.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	for _, ev := range ce.TraceEvents {
		if ev.Ph != "X" || ev.TS < 0 {
			t.Fatalf("bad chrome event %+v", ev)
		}
	}

	// Unknown format is a 400; unknown ID a 404.
	if r := getJSON(t, ts, "/v1/traces/"+traceID+"?format=svg", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("format=svg status %d, want 400", r.StatusCode)
	}
	if r := getJSON(t, ts, "/v1/traces/ffffffffffffffffffffffffffffffff", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status %d, want 404", r.StatusCode)
	}
}

func TestTracingBatchedPath(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 4, MaxWait: time.Millisecond})
	s.EnableTracing(TraceOptions{SampleEvery: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, "/v1/story", "trb", map[string]any{
		"sentences": []string{"john went to the garden"}, "reset": true,
	})
	resp, _ := post(t, ts, "/v1/answer", "trb", map[string]any{"question": "where is john?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("missing X-Trace-ID on batched answer")
	}

	var ex trace.Export
	if r := getJSON(t, ts, "/v1/traces/"+traceID, &ex); r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", r.StatusCode)
	}
	names := map[string]int{}
	spanNames(ex.Spans, names)
	for _, want := range []string{"answer", "vectorize", "queue-wait", "batch-flush", "infer", "hop", "worker", "output"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from batched trace (got %v)", want, names)
		}
	}

	// The relayed batch-flush span carries flush metadata, and the
	// span intervals nest inside the request without gaps in ordering:
	// queue-wait ends where batch-flush begins.
	var flush, wait *trace.ExportSpan
	var findSpan func(spans []*trace.ExportSpan)
	findSpan = func(spans []*trace.ExportSpan) {
		for _, sp := range spans {
			switch sp.Name {
			case "batch-flush":
				flush = sp
			case "queue-wait":
				wait = sp
			}
			findSpan(sp.Children)
		}
	}
	findSpan(ex.Spans)
	if flush == nil || wait == nil {
		t.Fatal("missing batch-flush or queue-wait span")
	}
	if flush.Attrs["batch_size"] == nil || flush.Attrs["flush_seq"] == nil || flush.Attrs["cache_hit"] == nil {
		t.Errorf("batch-flush attrs: %v", flush.Attrs)
	}
	if waitEnd := wait.StartNS + wait.DurNS; waitEnd != flush.StartNS {
		t.Errorf("queue-wait ends at %d, batch-flush starts at %d — should meet", waitEnd, flush.StartNS)
	}
}

func TestTracingErrorPathRetained(t *testing.T) {
	s := newTracedServer(t, TraceOptions{SampleEvery: 1 << 30}) // only the error rule can retain
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Burn the warmup sample slot (the very first commit is always
	// sampled in) with a healthy request on a prepared session.
	post(t, ts, "/v1/story", "ok", map[string]any{
		"sentences": []string{"mary went to the kitchen"}, "reset": true,
	})
	post(t, ts, "/v1/answer", "ok", map[string]any{"question": "where is mary?"})

	// No story in this session → 409; the errored trace must be
	// retained and flagged, and error replies carry trace headers too.
	resp, _ := post(t, ts, "/v1/answer", "empty-session", map[string]any{"question": "where is mary?"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" || resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("error reply missing X-Trace-ID / X-Request-ID")
	}
	var ex trace.Export
	if r := getJSON(t, ts, "/v1/traces/"+traceID, &ex); r.StatusCode != http.StatusOK {
		t.Fatalf("errored trace not retained: status %d", r.StatusCode)
	}
	if !ex.Error {
		t.Error("trace not flagged as error")
	}
	// JSON numbers decode as float64.
	if len(ex.Spans) == 0 || ex.Spans[0].Attrs["status"] != float64(409) {
		t.Errorf("root span should carry status=409: %+v", ex.Spans)
	}
	if st := s.rec.Stats(); st.KeptErr == 0 {
		t.Errorf("KeptErr = 0: %+v", st)
	}
}

func TestTracesDisabled(t *testing.T) {
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if r := getJSON(t, ts, "/v1/traces", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("index status %d, want 404 when tracing is off", r.StatusCode)
	}
	if r := getJSON(t, ts, "/v1/traces/0123", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("get status %d, want 404 when tracing is off", r.StatusCode)
	}
	// Answers work untraced and carry no trace header.
	post(t, ts, "/v1/story", "off", map[string]any{
		"sentences": []string{"mary went to the kitchen"}, "reset": true,
	})
	resp, _ := post(t, ts, "/v1/answer", "off", map[string]any{"question": "where is mary?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced answer status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-ID") != "" {
		t.Error("X-Trace-ID set with tracing disabled")
	}
}

func TestExemplarOnAnswerHistogram(t *testing.T) {
	s := newTracedServer(t, TraceOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post(t, ts, "/v1/story", "exm", map[string]any{
		"sentences": []string{"mary went to the kitchen"}, "reset": true,
	})
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/answer", "exm", map[string]any{"question": "where is mary?"})
	}
	snap := s.met.durations["answer"].Snapshot()
	if snap.ExemplarTraceID == "" {
		t.Fatal("answer histogram has no exemplar trace ID")
	}
	// The exemplar resolves to a retained trace (SampleEvery=1).
	tr := s.rec.Lookup(snap.ExemplarTraceID)
	if tr == nil {
		t.Fatalf("exemplar %q not resolvable", snap.ExemplarTraceID)
	}
	s.rec.Release(tr)
}

func TestUptimeAndBuildInfoMetrics(t *testing.T) {
	s := testServer(t)
	sc := scrape(t, s)
	if _, ok := sc["mnnfast_uptime_seconds"]; !ok {
		t.Error("mnnfast_uptime_seconds not exported")
	}
	found := false
	for k := range sc {
		if strings.HasPrefix(k, "mnnfast_build_info{") {
			if !strings.Contains(k, `go_version="go`) || !strings.Contains(k, `revision=`) {
				t.Errorf("build info labels: %s", k)
			}
			if sc[k] != 1 {
				t.Errorf("build info value = %v, want 1", sc[k])
			}
			found = true
		}
	}
	if !found {
		t.Error("mnnfast_build_info not exported")
	}
}

func TestTracedPredictAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := newTracedServer(t, TraceOptions{Capacity: 8, SampleEvery: 1})
	ex := s.corpus.Test[0]
	var es memnn.EmbeddedStory
	s.model.EmbedStoryInto(ex, &es)

	// Warm the trace pool past ring capacity and the forward pool at
	// this shape.
	for i := 0; i < 32; i++ {
		tr := s.rec.StartTrace("answer", "req")
		root := tr.Start("answer", 0)
		s.predict(ex, &es, tr)
		tr.Finish(root)
		s.rec.Commit(tr)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr := s.rec.StartTrace("answer", "req")
		root := tr.Start("answer", 0)
		s.predict(ex, &es, tr)
		tr.Finish(root)
		s.rec.Commit(tr)
	})
	if allocs != 0 {
		t.Fatalf("traced predict allocated %.1f/op, want 0", allocs)
	}
}
