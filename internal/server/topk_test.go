package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

// topkServer builds a private server (the shared testServer model must
// not be mutated) with approximate attention armed.
func topkServer(t *testing.T, cfg memnn.TopKConfig) (*Server, *memnn.Corpus) {
	t.Helper()
	opt := babi.GenOptions{Stories: 60, StoryLen: 10, People: 3, Locations: 3}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(9)))
	train, test := d.Split(0.85)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 16, Hops: 2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	model.SetTopK(cfg)
	s, err := New(model, corpus)
	if err != nil {
		t.Fatal(err)
	}
	return s, corpus
}

// storyAndAnswer drives one story + one answer through the handler tree
// and returns the answer index.
func storyAndAnswer(t *testing.T, ts *httptest.Server, session string, sentences []string, question string) int {
	t.Helper()
	resp, body := post(t, ts, "/v1/story", session, StoryRequest{Sentences: sentences, Reset: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("story: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/v1/answer", session, AnswerRequest{Question: question})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer: status %d: %s", resp.StatusCode, body)
	}
	var ar AnswerResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar.Index
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestServerTopKMetrics: an answer on an indexed session story moves
// the probe counters and the index-build stage series; the index is
// built once per story change, not per answer.
func TestServerTopKMetrics(t *testing.T) {
	s, _ := topkServer(t, memnn.TopKConfig{Enabled: true, K: 4, NProbe: 1, MinRows: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sentences := []string{
		"mary went to the kitchen", "john went to the garden",
		"sandra went to the office", "mary went to the garden",
		"john went to the kitchen", "sandra went to the garden",
		"mary went to the office", "john went to the office",
	}
	storyAndAnswer(t, ts, "topk", sentences, "where is mary")
	// Second answer against the unchanged story: cache + index hit.
	resp, _ := post(t, ts, "/v1/answer", "topk", AnswerRequest{Question: "where is john"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second answer: status %d", resp.StatusCode)
	}

	text := metricsText(t, ts)
	for _, want := range []string{"mnnfast_topk_probed_rows", "mnnfast_topk_candidates"} {
		line := ""
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(l, want+" ") {
				line = l
			}
		}
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("metric %s missing or zero (line %q)", want, line)
		}
	}
	if !strings.Contains(text, `mnnfast_stage_duration_seconds_count{stage="index-build"} 1`) {
		t.Errorf("index-build stage not observed exactly once:\n%s",
			grepLines(text, "index-build"))
	}
}

// TestServerTopKFullProbeMatchesExact: with every list probed and no
// cut, a topk server answers exactly like an exact server.
func TestServerTopKFullProbeMatchesExact(t *testing.T) {
	sTop, _ := topkServer(t, memnn.TopKConfig{Enabled: true, NProbe: 1 << 20, MinRows: 1})
	sExact, _ := topkServer(t, memnn.TopKConfig{})
	tsTop := httptest.NewServer(sTop.Handler())
	defer tsTop.Close()
	tsExact := httptest.NewServer(sExact.Handler())
	defer tsExact.Close()

	sentences := []string{
		"mary went to the kitchen", "john went to the garden",
		"sandra went to the office", "mary went to the garden",
	}
	for _, q := range []string{"where is mary", "where is john", "where is sandra"} {
		got := storyAndAnswer(t, tsTop, "a", sentences, q)
		want := storyAndAnswer(t, tsExact, "a", sentences, q)
		if got != want {
			t.Errorf("question %q: topk full-probe answer %d, exact %d", q, got, want)
		}
	}
}

// TestServerTopKBelowFloorFallsBack: a story under MinRows answers on
// the exact path — no probe counters move, no index-build observed.
func TestServerTopKBelowFloorFallsBack(t *testing.T) {
	s, _ := topkServer(t, memnn.TopKConfig{Enabled: true, K: 4, NProbe: 1, MinRows: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	storyAndAnswer(t, ts, "small", []string{"mary went to the kitchen"}, "where is mary")
	text := metricsText(t, ts)
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "mnnfast_topk_probed_rows ") && !strings.HasSuffix(l, " 0") {
			t.Errorf("below-floor story probed: %q", l)
		}
		if strings.Contains(l, `stage="index-build"`) && strings.HasSuffix(l, "_count 1") {
			t.Errorf("below-floor story observed index-build: %q", l)
		}
	}
}

func grepLines(text, needle string) string {
	var sb strings.Builder
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
