package server

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"mnnfast/internal/memnn"
	"mnnfast/internal/obs"
	"mnnfast/internal/tensor"
)

// handlerLabels enumerates the request-handler label values; per-handler
// counters and duration histograms are registered for exactly this set
// so the hot path never formats or allocates label strings.
var handlerLabels = []string{"story", "answer", "healthz", "metrics", "statz", "traces", "other"}

// handlerLabel maps a request path to its metrics label.
func handlerLabel(path string) string {
	switch path {
	case "/v1/story":
		return "story"
	case "/v1/answer":
		return "answer"
	case "/v1/healthz":
		return "healthz"
	case "/v1/metrics":
		return "metrics"
	case "/v1/statz":
		return "statz"
	}
	if strings.HasPrefix(path, "/v1/traces") {
		return "traces"
	}
	return "other"
}

// processStart anchors mnnfast_uptime_seconds.
var processStart = time.Now()

// metrics is the server's observability surface: every counter, gauge,
// and histogram it maintains, all registered into one obs.Registry that
// /v1/metrics and /v1/statz render. Hot-path updates are atomic adds
// and allocation-free.
type metrics struct {
	reg *obs.Registry

	requests  map[string]*obs.Counter   // per handler
	durations map[string]*obs.Histogram // per handler
	errors    *obs.Counter
	inflight  *obs.Gauge

	// Per-stage inference accounting (the paper's embedding vs.
	// inference split, measured on the serving path).
	stageVectorize  *obs.Histogram
	stageEmbed      *obs.Histogram
	stageIndexBuild *obs.Histogram
	stageAttention  *obs.Histogram
	stageGate       *obs.Histogram
	stageOutput     *obs.Histogram

	skippedRows *obs.Counter
	totalRows   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	// Approximate top-k attention accounting (see memnn.TopKConfig):
	// rows scored by IVF probes vs. rows surviving the cut into the
	// softmax + weighted sum. Both stay zero on an exact-mode server.
	topkProbed *obs.Counter
	topkCand   *obs.Counter

	// Early-exit accounting (see memnn.ExitPolicy): exitHop is the
	// distribution of hops actually executed per gated answer (mean exit
	// hop = sum/count); earlyExits[h-1] counts answers the gate shed
	// after hop h (the final hop is the full path, never an early exit,
	// so its counter stays zero). Observed only when the gate is armed,
	// so a gate-off server exposes the series at zero.
	exitHop    *obs.SizeHistogram
	earlyExits []*obs.Counter // indexed by hop-1, hop in 1..Cfg.Hops
}

// newMetrics builds and registers the full metric set for a model with
// the given hop count. sessionCount is sampled at collection time for
// the live-session gauge.
func newMetrics(hops int, sessionCount func() int64) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		requests:  make(map[string]*obs.Counter, len(handlerLabels)),
		durations: make(map[string]*obs.Histogram, len(handlerLabels)),
	}
	for _, h := range handlerLabels {
		m.requests[h] = reg.LabeledCounter("mnnfast_http_requests_total",
			"HTTP requests served, by handler.", "handler", h)
	}
	m.errors = reg.Counter("mnnfast_http_errors_total",
		"HTTP responses with status >= 400.")
	m.inflight = reg.Gauge("mnnfast_requests_in_flight",
		"HTTP requests currently being served.")
	reg.GaugeFunc("mnnfast_sessions",
		"Live QA sessions (distinct X-Session keys seen).", sessionCount)
	for _, h := range handlerLabels {
		m.durations[h] = reg.LabeledHistogram("mnnfast_http_request_duration_seconds",
			"End-to-end HTTP request latency, by handler.", "handler", h)
	}

	stage := func(name string) *obs.Histogram {
		return reg.LabeledHistogram("mnnfast_stage_duration_seconds",
			"Per-stage inference latency: vectorize (tokenize+encode), embed "+
				"(question+memory embedding), index-build (topk IVF index over "+
				"the embedded story), attention (per-hop softmax and "+
				"weighted sum), gate (early-exit confidence checks), output "+
				"(final projection).", "stage", name)
	}
	m.stageVectorize = stage("vectorize")
	m.stageEmbed = stage("embed")
	m.stageIndexBuild = stage("index-build")
	m.stageAttention = stage("attention")
	m.stageGate = stage("gate")
	m.stageOutput = stage("output")

	m.exitHop = reg.SizeHistogram("mnnfast_exit_hop",
		"Hops executed per gated answer (mean exit hop = sum/count); "+
			"observed only while an early-exit policy is armed.")
	m.earlyExits = make([]*obs.Counter, hops)
	for h := 1; h <= hops; h++ {
		m.earlyExits[h-1] = reg.LabeledCounter("mnnfast_early_exits_total",
			"Answers the confidence gate shed after the labeled hop, "+
				"skipping the remaining hops.", "hop", strconv.Itoa(h))
	}

	m.skippedRows = reg.Counter("mnnfast_skipped_rows_total",
		"Weighted-sum rows bypassed by zero-skipping.")
	m.totalRows = reg.Counter("mnnfast_total_rows_total",
		"Weighted-sum rows considered.")
	m.cacheHits = reg.Counter("mnnfast_embedding_cache_hits_total",
		"Answers served from a session's cached embedded story.")
	m.cacheMisses = reg.Counter("mnnfast_embedding_cache_misses_total",
		"Answers that had to (re)embed the session story.")
	m.topkProbed = reg.Counter("mnnfast_topk_probed_rows",
		"Memory rows scored by topk IVF probes (zero on the exact path).")
	m.topkCand = reg.Counter("mnnfast_topk_candidates",
		"Memory rows surviving the topk cut into softmax + weighted sum.")

	// Process-wide tensor pool dispatch accounting (see tensor.ReadPoolStats).
	reg.CounterFunc("mnnfast_tensor_pool_dispatches_total",
		"Parallel dispatches issued by tensor.Pool.",
		func() int64 { return tensor.ReadPoolStats().Dispatches })
	reg.CounterFunc("mnnfast_tensor_pool_dispatch_reuses_total",
		"Dispatch descriptors recycled instead of allocated.",
		func() int64 { return tensor.ReadPoolStats().DispatchReuses })
	reg.CounterFunc("mnnfast_tensor_pool_spans_queued_total",
		"Work spans handed to persistent pool workers.",
		func() int64 { return tensor.ReadPoolStats().SpansQueued })
	reg.CounterFunc("mnnfast_tensor_pool_spans_inline_total",
		"Work spans run inline because the dispatch queue was full.",
		func() int64 { return tensor.ReadPoolStats().SpansInline })

	reg.GaugeFunc("mnnfast_uptime_seconds",
		"Seconds since this process constructed its first server.",
		func() int64 { return int64(time.Since(processStart) / time.Second) })
	reg.InfoGaugeFunc("mnnfast_build_info",
		"Build metadata: Go toolchain version and VCS revision (constant 1).",
		func() int64 { return 1 },
		"go_version", runtime.Version(),
		"revision", buildRevision())

	// Kernel dispatch info gauge: one series per tier available on this
	// host, value 1 on the active tier (sampled at collection time so a
	// test override shows up). Dashboards join on it to segment latency
	// by SIMD tier.
	for _, tier := range tensor.KernelTiers() {
		tier := tier
		reg.LabeledGaugeFunc("mnnfast_kernel_tier",
			"Active tensor kernel dispatch tier (1 on the active tier; one series per tier available on this host).",
			"tier", tier,
			func() int64 {
				if tensor.KernelTier() == tier {
					return 1
				}
				return 0
			})
	}
	return m
}

// buildRevision returns the VCS revision baked into the binary (with a
// "+dirty" suffix on modified trees), or "unknown" for builds without
// VCS stamping (go test, go run).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// observeInference drains one request's Instrumentation into the stage
// histograms and skip counters. Allocation-free.
func (m *metrics) observeInference(ins *memnn.Instrumentation) {
	m.stageEmbed.ObserveNS(ins.EmbedNS)
	m.stageAttention.ObserveNS(ins.AttentionNS)
	if ins.GateNS > 0 {
		m.stageGate.ObserveNS(ins.GateNS)
	}
	m.stageOutput.ObserveNS(ins.OutputNS)
	m.skippedRows.Add(ins.SkippedRows)
	m.totalRows.Add(ins.TotalRows)
	if ins.ProbedRows > 0 {
		m.topkProbed.Add(ins.ProbedRows)
		m.topkCand.Add(ins.CandRows)
	}
}

// observeExit records one gated answer's exit hop: the hop distribution
// always, the per-hop early-exit counter only when the gate actually
// shed the answer (hop < the model's hop count). Allocation-free.
func (m *metrics) observeExit(hop int) {
	m.exitHop.Observe(int64(hop))
	if hop >= 1 && hop < len(m.earlyExits) {
		m.earlyExits[hop-1].Inc()
	}
}
