package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mnnfast/internal/obs"
)

// newBatchedServer wraps the shared trained model in a fresh Server
// (sessions and metrics isolated per test) with batching enabled.
func newBatchedServer(t testing.TB, opt BatchOptions) *Server {
	t.Helper()
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableBatching(opt)
	return s
}

func scrape(t testing.TB, s *Server) obs.Scrape {
	t.Helper()
	var buf bytes.Buffer
	if err := s.met.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// answerReq builds a direct /v1/answer request (no network) so tests
// control the context precisely.
func answerReq(session, question string) *http.Request {
	req := httptest.NewRequest(http.MethodPost, "/v1/answer",
		strings.NewReader(`{"question":"`+question+`"}`))
	req.Header.Set("X-Session", session)
	return req
}

// TestBatchedEquivalence is the server-level equivalence property: a
// batched server under concurrent load returns byte-identical response
// bodies to an unbatched server answering the same questions serially —
// whatever batch compositions the interleaving produces. It also checks
// the acceptance criterion that real concurrency actually batches
// (batch-size p50 > 1).
func TestBatchedEquivalence(t *testing.T) {
	base := testServer(t)
	plain, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	batched := newBatchedServer(t, BatchOptions{MaxBatch: 8, MaxWait: 5 * time.Millisecond})
	defer batched.Close()

	stories := map[string][]string{
		"sA": {"john went to the kitchen", "mary went to the garden"},
		"sB": {"john went to the garden"},
		"sC": {"mary went to the kitchen", "john went to the garden", "mary went to the garden"},
	}
	questions := []string{"where is john?", "where is mary?"}
	sessions := []string{"sA", "sB", "sC"}

	seed := func(s *Server) {
		h := s.Handler()
		for sess, sents := range stories {
			body, _ := json.Marshal(StoryRequest{Sentences: sents})
			req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
			req.Header.Set("X-Session", sess)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("seeding %s: %d %s", sess, rec.Code, rec.Body.String())
			}
		}
	}
	seed(plain)
	seed(batched)

	// Serial baseline from the unbatched server.
	plainH := plain.Handler()
	baseline := make(map[string]string)
	for _, sess := range sessions {
		for _, q := range questions {
			rec := httptest.NewRecorder()
			plainH.ServeHTTP(rec, answerReq(sess, q))
			if rec.Code != http.StatusOK {
				t.Fatalf("baseline %s/%q: %d %s", sess, q, rec.Code, rec.Body.String())
			}
			baseline[sess+"|"+q] = rec.Body.String()
		}
	}

	// Concurrent batched traffic: 16 clients × 25 requests, seeded
	// random (session, question) picks.
	ts := httptest.NewServer(batched.Handler())
	defer ts.Close()
	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + c)))
			for i := 0; i < perClient; i++ {
				sess := sessions[rng.Intn(len(sessions))]
				q := questions[rng.Intn(len(questions))]
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/answer",
					strings.NewReader(`{"question":"`+q+`"}`))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Session", sess)
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s/%q: status %d: %s", sess, q, resp.StatusCode, buf.String())
					return
				}
				if got, want := buf.String(), baseline[sess+"|"+q]; got != want {
					mismatches.Add(1)
					t.Errorf("%s/%q: batched body %q != unbatched %q", sess, q, got, want)
				}
			}
		}(c)
	}
	wg.Wait()
	if mismatches.Load() > 0 {
		t.Fatalf("%d batched responses differed from the unbatched baseline", mismatches.Load())
	}

	sc := scrape(t, batched)
	if got := sc.Value("mnnfast_batch_size_sum"); got != clients*perClient {
		t.Errorf("batch size sum = %v, want %d (every answer through one flush)", got, clients*perClient)
	}
	if p50 := sc.Quantile("mnnfast_batch_size", "", 0.5); p50 <= 1 {
		t.Errorf("batch size p50 = %v under %d concurrent clients, want > 1", p50, clients)
	}
	if shed := sc.Value("mnnfast_batch_shed_total"); shed != 0 {
		t.Errorf("shed %v requests with default queue depth, want 0", shed)
	}
}

// TestBatchedQueueFullSheds429 drives the admission-control path: with
// the dispatcher wedged (the test holds the session write lock it
// needs) and the queue full, the next answer is rejected immediately
// with 429 and a Retry-After hint.
func TestBatchedQueueFullSheds429(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 1, MaxWait: 2 * time.Millisecond, QueueDepth: 2})
	defer s.Close()
	h := s.Handler()

	body, _ := json.Marshal(StoryRequest{Sentences: []string{"john went to the kitchen"}})
	req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
	req.Header.Set("X-Session", "q")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("story: %d %s", rec.Code, rec.Body.String())
	}

	// Wedge the dispatcher: it needs this session's lock to embed.
	sess := s.session(answerReq("q", ""))
	sess.mu.Lock()

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 3)
	for i := range recs {
		recs[i] = httptest.NewRecorder()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.ServeHTTP(recs[i], answerReq("q", "where is john?"))
		}(i)
	}
	// One request is collected (dispatcher now blocked on the session
	// lock); the other two fill the depth-2 queue.
	waitForCond(t, "queue full", func() bool { return s.batch.QueueLen() == 2 })

	over := httptest.NewRecorder()
	h.ServeHTTP(over, answerReq("q", "where is john?"))
	if over.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d %s, want 429", over.Code, over.Body.String())
	}
	if ra := over.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (2ms MaxWait rounds up)", ra)
	}

	sess.mu.Unlock()
	wg.Wait()
	for i, r := range recs {
		if r.Code != http.StatusOK {
			t.Errorf("queued request %d: %d %s, want 200 after unwedge", i, r.Code, r.Body.String())
		}
	}
	sc := scrape(t, s)
	if shed := sc.Value("mnnfast_batch_shed_total"); shed != 1 {
		t.Errorf("shed counter = %v, want 1", shed)
	}
}

// TestBatchedDeadline504 checks deadline propagation: a request whose
// context ends while it waits in the queue gets 504, never occupies a
// batch slot, and is counted in the expired counter.
func TestBatchedDeadline504(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 1, MaxWait: 2 * time.Millisecond, QueueDepth: 4})
	defer s.Close()
	h := s.Handler()

	body, _ := json.Marshal(StoryRequest{Sentences: []string{"mary went to the garden"}})
	req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
	req.Header.Set("X-Session", "d")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("story: %d", rec.Code)
	}

	sess := s.session(answerReq("d", ""))
	sess.mu.Lock() // wedge the dispatcher on the first answer

	first := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, answerReq("d", "where is mary?"))
	}()
	// Wait until the first answer is past the batcher's expiry filter
	// (its queue wait has been observed) — from then on it owns the
	// wedged batch and anything else queues behind it.
	waitForCond(t, "first answer collected", func() bool {
		return scrape(t, s).Value("mnnfast_batch_queue_wait_seconds_count") == 1
	})

	// Second answer queues behind the wedged batch; cancel it there.
	ctx, cancel := context.WithCancel(context.Background())
	doomed := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(doomed, answerReq("d", "where is mary?").WithContext(ctx))
	}()
	waitForCond(t, "second answer queued", func() bool { return s.batch.QueueLen() == 1 })
	cancel()
	<-done
	if doomed.Code != http.StatusGatewayTimeout {
		t.Fatalf("canceled-in-queue request: %d %s, want 504", doomed.Code, doomed.Body.String())
	}

	sess.mu.Unlock()
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s, want 200", first.Code, first.Body.String())
	}

	sc := scrape(t, s)
	if exp := sc.Value("mnnfast_batch_expired_total"); exp != 1 {
		t.Errorf("expired counter = %v, want 1", exp)
	}
	// The expired request never took a batch slot: only the first
	// answer flowed through a flush.
	if sum := sc.Value("mnnfast_batch_size_sum"); sum != 1 {
		t.Errorf("batch size sum = %v, want 1 (expired request must not occupy a slot)", sum)
	}
}

// TestBatchedCloseDrains exercises graceful shutdown: Close stops
// admission (503) but queued answers still complete.
func TestBatchedCloseDrains(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 1, MaxWait: 2 * time.Millisecond, QueueDepth: 4})
	h := s.Handler()

	body, _ := json.Marshal(StoryRequest{Sentences: []string{"john went to the garden"}})
	req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
	req.Header.Set("X-Session", "c")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("story: %d", rec.Code)
	}

	sess := s.session(answerReq("c", ""))
	sess.mu.Lock() // hold a batch in flight across Close

	recs := []*httptest.ResponseRecorder{httptest.NewRecorder(), httptest.NewRecorder()}
	var wg sync.WaitGroup
	for _, r := range recs {
		wg.Add(1)
		go func(r *httptest.ResponseRecorder) {
			defer wg.Done()
			h.ServeHTTP(r, answerReq("c", "where is john?"))
		}(r)
	}
	waitForCond(t, "one in flight, one queued", func() bool { return s.batch.QueueLen() == 1 })

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was wedged in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// Admission is already off while the drain waits.
	waitForCond(t, "admission closed", func() bool {
		late := httptest.NewRecorder()
		h.ServeHTTP(late, answerReq("c", "where is john?"))
		return late.Code == http.StatusServiceUnavailable
	})

	sess.mu.Unlock()
	<-closed
	wg.Wait()
	for i, r := range recs {
		if r.Code != http.StatusOK {
			t.Errorf("in-flight request %d: %d %s, want 200 (drained)", i, r.Code, r.Body.String())
		}
	}
	s.Close() // idempotent
}

// TestBatchedNoStory409 keeps the unbatched path's contract: answering
// a story-less session through the batcher still yields 409, and a
// question with out-of-vocabulary words still yields 422.
func TestBatchedNoStory409(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, answerReq("empty", "where is john?"))
	if rec.Code != http.StatusConflict {
		t.Errorf("no-story answer: %d %s, want 409", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, answerReq("empty", "where is zorblax?"))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("OOV question: %d %s, want 422", rec.Code, rec.Body.String())
	}
}

// TestBatchedStress hammers a batched server from many goroutines —
// 8 clients sharing one session plus 8 on private sessions, with
// periodic story mutations to force cache invalidation — and runs
// under -race in CI.
func TestBatchedStress(t *testing.T) {
	s := newBatchedServer(t, BatchOptions{MaxBatch: 8, MaxWait: 500 * time.Microsecond, QueueDepth: 64})
	defer s.Close()
	h := s.Handler()

	seed := func(sess string) {
		body, _ := json.Marshal(StoryRequest{Sentences: []string{
			"john went to the kitchen", "mary went to the garden"}})
		req := httptest.NewRequest(http.MethodPost, "/v1/story", bytes.NewReader(body))
		req.Header.Set("X-Session", sess)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("seed %s: %d", sess, rec.Code)
		}
	}
	sessOf := func(g int) string {
		if g < 8 {
			return "shared"
		}
		return "solo-" + string(rune('a'+g-8))
	}
	seed("shared")
	for g := 8; g < 16; g++ {
		seed(sessOf(g))
	}

	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := sessOf(g)
			for i := 0; i < perG; i++ {
				if i%10 == 9 {
					seed(sess) // invalidate the embedding cache mid-stream
					continue
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, answerReq(sess, "where is john?"))
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d answer %d: %d %s", g, i, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRunAnswerBatchAllocs asserts the steady-state batched inference
// path — session dedup, lock acquisition, batched predict, metric
// observation — allocates nothing outside the flush boundary, matching
// the unbatched predict path's zero-alloc guarantee.
func TestRunAnswerBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	base := testServer(t)
	s, err := New(base.model, base.corpus)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.session(answerReq("alloc", ""))
	sess.mu.Lock()
	sess.story.Sentences = [][]string{
		{"john", "went", "to", "the", "kitchen"},
		{"mary", "went", "to", "the", "garden"},
	}
	if err := s.embedSession(sess, nil); err != nil {
		sess.mu.Unlock()
		t.Fatal(err)
	}
	sess.mu.Unlock()

	qJohn, err := s.corpus.Vocab.EncodeStrict([]string{"where", "is", "john"})
	if err != nil {
		t.Fatal(err)
	}
	qMary, err := s.corpus.Vocab.EncodeStrict([]string{"where", "is", "mary"})
	if err != nil {
		t.Fatal(err)
	}
	items := []*answerItem{
		{sess: sess, qIDs: qJohn},
		{sess: sess, qIDs: qMary},
		{sess: sess, qIDs: qJohn},
		{sess: sess, qIDs: qMary},
	}
	s.runAnswerBatch(items) // warm the batch scratch at this shape
	allocs := testing.AllocsPerRun(100, func() {
		s.runAnswerBatch(items)
	})
	if allocs != 0 {
		t.Errorf("steady-state batched answer path allocates %v per flush, want 0", allocs)
	}
	for i, it := range items {
		if it.err != nil {
			t.Errorf("item %d: %v", i, it.err)
		}
	}
}

// TestMetricsStatzCanceledContext is the regression test for the
// observability endpoints' missing request-context handling: a request
// whose context has already ended must fail fast with 503 instead of
// running a metrics collection pass.
func TestMetricsStatzCanceledContext(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for _, path := range []string{"/v1/metrics", "/v1/statz"} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s with canceled context: %d, want 503", path, rec.Code)
		}

		// A live context still serves the endpoint.
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s with live context: %d, want 200", path, rec.Code)
		}
	}
}
