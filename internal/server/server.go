// Package server exposes a trained memory network as an HTTP JSON
// service — the "interactive applications" deployment the paper
// sketches in §4.1.1, where the knowledge database is server-side state
// and users submit raw questions.
//
// Endpoints:
//
//	POST /v1/story    {"sentences": ["john went to the kitchen", ...]}
//	                  → appends to (or with "reset": true, replaces) the
//	                    session story
//	POST /v1/answer   {"question": "where is john?"}
//	                  → {"answer": "kitchen", "index": 3, ...}
//	GET  /v1/healthz  → {"status": "ok", ...model metadata}
//
// Sessions are keyed by the X-Session header (default "default") so
// multiple users can hold independent stories against one model — the
// multi-tenant setting of the paper's Figure 4.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
	"mnnfast/internal/vocab"
)

// Server serves QA requests against one trained model.
type Server struct {
	model  *memnn.Model
	corpus *memnn.Corpus
	// SkipThreshold applies zero-skipping to every answer; 0 = exact.
	SkipThreshold float32

	mu       sync.Mutex
	sessions map[string]*babi.Story

	// forwards recycles forward-pass buffers across answer requests:
	// the inference core of a steady-state request allocates nothing
	// (see memnn.ApplyInto); concurrent requests each draw their own.
	forwards sync.Pool
}

// New builds a Server around a trained model and its corpus metadata.
func New(model *memnn.Model, corpus *memnn.Corpus) (*Server, error) {
	if model == nil || corpus == nil {
		return nil, fmt.Errorf("server: nil model or corpus")
	}
	return &Server{
		model:    model,
		corpus:   corpus,
		sessions: make(map[string]*babi.Story),
	}, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/story", s.handleStory)
	mux.HandleFunc("/v1/answer", s.handleAnswer)
	mux.HandleFunc("/v1/healthz", s.handleHealth)
	return mux
}

// StoryRequest is the body of POST /v1/story.
type StoryRequest struct {
	Sentences []string `json:"sentences"`
	Reset     bool     `json:"reset,omitempty"`
}

// StoryResponse reports the session's story size.
type StoryResponse struct {
	Sentences int `json:"sentences"`
}

// AnswerRequest is the body of POST /v1/answer.
type AnswerRequest struct {
	Question string `json:"question"`
}

// AnswerResponse carries the prediction.
type AnswerResponse struct {
	Answer    string `json:"answer"`
	Index     int    `json:"index"`
	Sentences int    `json:"sentences"`
}

// HealthResponse describes the loaded model.
type HealthResponse struct {
	Status  string `json:"status"`
	Vocab   int    `json:"vocab"`
	Answers int    `json:"answers"`
	Hops    int    `json:"hops"`
	Dim     int    `json:"dim"`
	MaxSent int    `json:"max_sentences"`
}

func (s *Server) session(r *http.Request) *babi.Story {
	key := r.Header.Get("X-Session")
	if key == "" {
		key = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[key]
	if !ok {
		st = &babi.Story{}
		s.sessions[key] = st
	}
	return st
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req StoryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// Validate every sentence against the frozen vocabulary before
	// mutating the session.
	tokenized := make([][]string, 0, len(req.Sentences))
	for i, raw := range req.Sentences {
		words := vocab.Tokenize(raw)
		if len(words) == 0 {
			httpError(w, http.StatusBadRequest, "sentence %d is empty", i)
			return
		}
		if _, err := s.corpus.Vocab.EncodeStrict(words); err != nil {
			httpError(w, http.StatusUnprocessableEntity, "sentence %d: %v", i, err)
			return
		}
		tokenized = append(tokenized, words)
	}
	story := s.session(r)
	s.mu.Lock()
	if req.Reset {
		story.Sentences = nil
	}
	story.Sentences = append(story.Sentences, tokenized...)
	n := len(story.Sentences)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StoryResponse{Sentences: n})
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	story := s.session(r)
	s.mu.Lock()
	snapshot := babi.Story{
		Sentences: append([][]string(nil), story.Sentences...),
		Question:  vocab.Tokenize(req.Question),
	}
	s.mu.Unlock()
	if len(snapshot.Sentences) == 0 {
		httpError(w, http.StatusConflict, "no story in session; POST /v1/story first")
		return
	}
	if len(snapshot.Question) == 0 {
		httpError(w, http.StatusBadRequest, "empty question")
		return
	}
	ex, err := s.corpus.VectorizeStory(snapshot)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	idx := s.predict(ex)
	writeJSON(w, http.StatusOK, AnswerResponse{
		Answer:    s.corpus.AnswerWord(idx),
		Index:     idx,
		Sentences: len(snapshot.Sentences),
	})
}

// predict runs the model over one vectorized example with pooled
// forward-pass buffers.
func (s *Server) predict(ex memnn.Example) int {
	f, _ := s.forwards.Get().(*memnn.Forward)
	if f == nil {
		f = new(memnn.Forward)
	}
	idx := s.model.PredictSkipInto(ex, s.SkipThreshold, f)
	s.forwards.Put(f)
	return idx
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Vocab:   s.corpus.Vocab.Size(),
		Answers: len(s.corpus.Answers),
		Hops:    s.model.Cfg.Hops,
		Dim:     s.model.Cfg.Dim,
		MaxSent: s.model.Cfg.MaxSent,
	})
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
