// Package server exposes a trained memory network as an HTTP JSON
// service — the "interactive applications" deployment the paper
// sketches in §4.1.1, where the knowledge database is server-side state
// and users submit raw questions.
//
// Endpoints:
//
//	POST /v1/story    {"sentences": ["john went to the kitchen", ...]}
//	                  → appends to (or with "reset": true, replaces) the
//	                    session story
//	POST /v1/answer   {"question": "where is john?"}
//	                  → {"answer": "kitchen", "index": 3, ...}
//	GET  /v1/healthz  → {"status": "ok", ...model metadata}
//	GET  /v1/metrics  → Prometheus text exposition of the runtime metrics
//	GET  /v1/statz    → the same metrics as a JSON snapshot with percentiles
//
// Sessions are keyed by the X-Session header (default "default") so
// multiple users can hold independent stories against one model — the
// multi-tenant setting of the paper's Figure 4. Each session carries its
// own lock plus a cache of its embedded story (the serving-side analogue
// of the paper's §3.3 embedding cache): answers against an unchanged
// story skip the memory-embedding stage entirely, and concurrent answers
// on different sessions never serialize on shared state.
//
// Every request is tagged with an X-Request-ID (caller-supplied or
// generated), echoed in the response and in the optional structured
// access log (Server.AccessLog).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mnnfast/internal/babi"
	"mnnfast/internal/batcher"
	"mnnfast/internal/memnn"
	"mnnfast/internal/obs"
	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
	"mnnfast/internal/vocab"
)

// session is one user's state: the story, and a cache of its embedded
// memories. The per-session lock means answer traffic on different
// sessions proceeds in parallel; within one session, answers share the
// cache under a read lock and only story mutations (or the first answer
// after one) take the write lock.
type session struct {
	mu    sync.RWMutex
	story babi.Story // guarded by mu

	// Embedding cache: valid means cachedSentences/emb reflect the
	// current story. Any story mutation invalidates it.
	cacheValid      bool                // guarded by mu
	cachedSentences [][]int             // vectorized story (trimmed to MaxSent); guarded by mu
	emb             memnn.EmbeddedStory // guarded by mu
}

// forwardState bundles the pooled per-request inference buffers: the
// forward-pass scratch, the per-stage instrumentation accumulator, and
// the trace-event buffer the instrumented pass records into.
type forwardState struct {
	f   memnn.Forward
	ins memnn.Instrumentation
	ev  trace.Events
}

// Server serves QA requests against one trained model.
type Server struct {
	model  *memnn.Model
	corpus *memnn.Corpus
	// SkipThreshold applies zero-skipping to every answer; 0 = exact.
	SkipThreshold float32
	// ExitPolicy arms the confidence-gated early exit on every answer;
	// the zero value runs every hop (see memnn.ExitPolicy). Set before
	// the server starts handling requests.
	ExitPolicy memnn.ExitPolicy
	// AccessLog, when non-nil, receives one structured line per request:
	// request_id, method, path, session, status, duration.
	AccessLog *log.Logger
	// PprofLabels, when true, wraps request handling in pprof.Do with
	// handler/session labels so CPU profiles attribute samples to
	// handlers. Off by default: label propagation costs a goroutine
	// label swap per request.
	PprofLabels bool

	mu       sync.RWMutex        // guards the sessions map (not the sessions)
	sessions map[string]*session // guarded by mu

	// forwards recycles forward-pass buffers across answer requests:
	// the inference core of a steady-state request allocates nothing
	// (see memnn.ApplyInto); concurrent requests each draw their own.
	forwards sync.Pool

	// Micro-batching (see EnableBatching / batch.go). batch is nil when
	// batching is off; items pools answerItem wrappers; bstate is the
	// dispatcher-owned flush scratch; retryAfter is the precomputed 429
	// Retry-After value.
	batch      *batcher.Batcher[*answerItem]
	items      sync.Pool
	bstate     batchState
	retryAfter string

	// parPool holds the persistent workers behind EnableParallelism;
	// nil when inference is serial. Owned by the server, closed by Close.
	parPool *tensor.Pool

	// rec is the flight recorder behind /v1/traces; nil when tracing
	// is off (see EnableTracing in trace.go).
	rec *trace.Recorder

	met    *metrics
	reqSeq atomic.Uint64
}

// New builds a Server around a trained model and its corpus metadata.
func New(model *memnn.Model, corpus *memnn.Corpus) (*Server, error) {
	if model == nil || corpus == nil {
		return nil, fmt.Errorf("server: nil model or corpus")
	}
	s := &Server{
		model:    model,
		corpus:   corpus,
		sessions: make(map[string]*session),
	}
	s.met = newMetrics(model.Cfg.Hops, func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(len(s.sessions))
	})
	return s, nil
}

// Metrics returns the server's metric registry, for embedding into
// other HTTP surfaces or reading in tests.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Handler returns the HTTP handler tree, wrapped in the metrics and
// access-log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/story", s.handleStory)
	mux.HandleFunc("/v1/answer", s.handleAnswer)
	mux.HandleFunc("/v1/healthz", s.handleHealth)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	mux.HandleFunc("/v1/traces", s.handleTraceIndex)
	mux.HandleFunc("/v1/traces/{id}", s.handleTraceGet)
	return s.instrument(mux)
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request-ID tagging, request-scoped
// tracing, in-flight and per-handler accounting, optional pprof
// labels, and the optional access log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", id)
		label := handlerLabel(r.URL.Path)
		sess := r.Header.Get("X-Session")
		if sess == "" {
			sess = "default"
		}

		// Start the request trace before the handler runs so every
		// reply — including 429/503/504 error paths that never reach a
		// handler body — carries X-Trace-ID and traceparent headers.
		var tr *trace.Trace
		if s.rec != nil && traced(label) {
			//mnnfast:allow poolescape ownership transfers to the recorder: Commit below returns tr to the pool on every path
			tr = s.rec.StartTrace(label, id)
			if hi, lo, parent, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				tr.AdoptRemote(hi, lo, parent)
			}
			root := tr.Start(label, 0)
			tr.AnnotateStr(root, "kernel_tier", tensor.KernelTier())
			w.Header().Set("X-Trace-ID", tr.ID())
			w.Header().Set("traceparent", tr.Traceparent(root))
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr))
		}

		s.met.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		if s.PprofLabels {
			pprof.Do(r.Context(), pprof.Labels("handler", label, "session", sess), func(ctx context.Context) {
				next.ServeHTTP(sw, r.WithContext(ctx))
			})
		} else {
			next.ServeHTTP(sw, r)
		}
		d := time.Since(t0)
		s.met.inflight.Add(-1)
		s.met.requests[label].Inc()
		if tr != nil {
			root := tr.Root()
			if sw.status >= 400 {
				tr.SetError()
				tr.Annotate(root, "status", int64(sw.status))
			}
			tr.Finish(root)
			// The exemplar points the latency histogram's slow tail at
			// a concrete trace ID.
			s.met.durations[label].ObserveNSExemplar(d.Nanoseconds(), tr.ID64())
			s.rec.Commit(tr)
		} else {
			s.met.durations[label].Observe(d)
		}
		if sw.status >= 400 {
			s.met.errors.Inc()
		}
		if s.AccessLog != nil {
			s.AccessLog.Printf("request_id=%s method=%s path=%s session=%s status=%d dur_us=%d",
				id, r.Method, r.URL.Path, sess, sw.status, d.Microseconds())
		}
	})
}

// StoryRequest is the body of POST /v1/story.
type StoryRequest struct {
	Sentences []string `json:"sentences"`
	Reset     bool     `json:"reset,omitempty"`
}

// StoryResponse reports the session's story size.
type StoryResponse struct {
	Sentences int `json:"sentences"`
}

// AnswerRequest is the body of POST /v1/answer.
type AnswerRequest struct {
	Question string `json:"question"`
}

// AnswerResponse carries the prediction.
type AnswerResponse struct {
	Answer    string `json:"answer"`
	Index     int    `json:"index"`
	Sentences int    `json:"sentences"`
}

// HealthResponse describes the loaded model.
type HealthResponse struct {
	Status  string `json:"status"`
	Vocab   int    `json:"vocab"`
	Answers int    `json:"answers"`
	Hops    int    `json:"hops"`
	Dim     int    `json:"dim"`
	MaxSent int    `json:"max_sentences"`
}

func (s *Server) session(r *http.Request) *session {
	key := r.Header.Get("X-Session")
	if key == "" {
		key = "default"
	}
	s.mu.RLock()
	st := s.sessions[key]
	s.mu.RUnlock()
	if st != nil {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st = s.sessions[key]; st == nil {
		st = &session{}
		s.sessions[key] = st
	}
	return st
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req StoryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// Validate every sentence against the frozen vocabulary before
	// mutating the session.
	tokenized := make([][]string, 0, len(req.Sentences))
	for i, raw := range req.Sentences {
		words := vocab.Tokenize(raw)
		if len(words) == 0 {
			httpError(w, http.StatusBadRequest, "sentence %d is empty", i)
			return
		}
		if _, err := s.corpus.Vocab.EncodeStrict(words); err != nil {
			httpError(w, http.StatusUnprocessableEntity, "sentence %d: %v", i, err)
			return
		}
		tokenized = append(tokenized, words)
	}
	sess := s.session(r)
	sess.mu.Lock()
	if req.Reset {
		sess.story.Sentences = nil
	}
	sess.story.Sentences = append(sess.story.Sentences, tokenized...)
	sess.cacheValid = false
	n := len(sess.story.Sentences)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, StoryResponse{Sentences: n})
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	tr := traceFrom(r.Context())
	t0 := time.Now()
	vs := tr.Start("vectorize", tr.Root())
	qWords := vocab.Tokenize(req.Question)
	if len(qWords) == 0 {
		httpError(w, http.StatusBadRequest, "empty question")
		return
	}
	qIDs, err := s.corpus.Vocab.EncodeStrict(qWords)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "memnn: question: %v", err)
		return
	}
	tr.Finish(vs)
	s.met.stageVectorize.Observe(time.Since(t0))
	sess := s.session(r)

	// Batched path: hand the question to the micro-batching scheduler,
	// which coalesces concurrent answers into one batched inference call
	// (bit-identical results; see batch.go).
	if s.batch != nil {
		s.answerBatched(w, r, sess, qIDs)
		return
	}

	// Fast path: the session's embedded story is cached — answer under
	// the read lock so concurrent questions on this session (and any
	// traffic on other sessions) proceed in parallel. A valid cache
	// implies a non-empty story.
	sess.mu.RLock()
	if sess.cacheValid {
		tr.Annotate(tr.Root(), "cache_hit", 1)
		idx := s.predict(memnn.Example{Sentences: sess.cachedSentences, Question: qIDs}, &sess.emb, tr)
		n := len(sess.story.Sentences)
		sess.mu.RUnlock()
		s.met.cacheHits.Inc()
		writeJSON(w, http.StatusOK, AnswerResponse{
			Answer: s.corpus.AnswerWord(idx), Index: idx, Sentences: n,
		})
		return
	}
	sess.mu.RUnlock()

	// Slow path: first answer after a story mutation — (re)embed the
	// story under the write lock, then answer while still holding it.
	sess.mu.Lock()
	if len(sess.story.Sentences) == 0 {
		sess.mu.Unlock()
		httpError(w, http.StatusConflict, "no story in session; POST /v1/story first")
		return
	}
	if !sess.cacheValid {
		tr.Annotate(tr.Root(), "cache_hit", 0)
		if err := s.embedSession(sess, tr); err != nil {
			sess.mu.Unlock()
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		s.met.cacheMisses.Inc()
	} else {
		tr.Annotate(tr.Root(), "cache_hit", 1)
		s.met.cacheHits.Inc() // another goroutine embedded it meanwhile
	}
	idx := s.predict(memnn.Example{Sentences: sess.cachedSentences, Question: qIDs}, &sess.emb, tr)
	n := len(sess.story.Sentences)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, AnswerResponse{
		Answer: s.corpus.AnswerWord(idx), Index: idx, Sentences: n,
	})
}

// embedSession vectorizes and embeds the session's story into its
// cache. Caller holds the session write lock. The embedding time lands
// in the embed-stage histogram, so cache effectiveness is directly
// visible as vanished embed time on the hit path.
//
// This is the cache-fill miss path: it runs once per story change and
// allocates by design (vectorization builds fresh id slices), so it is
// a coldpath boundary — the zero-allocation contract covers the hit
// path that serves from the embedded cache.
//
//mnnfast:coldpath
//mnnfast:locked sess.mu
func (s *Server) embedSession(sess *session, tr *trace.Trace) error {
	sp := tr.Start("embed-story", tr.Root())
	t0 := time.Now()
	ex, err := s.corpus.VectorizeStory(babi.Story{Sentences: sess.story.Sentences})
	if err != nil {
		tr.Finish(sp)
		return err
	}
	sess.cachedSentences = ex.Sentences
	s.model.EmbedStoryInto(memnn.Example{Sentences: ex.Sentences}, &sess.emb)
	sess.cacheValid = true
	s.met.stageEmbed.Observe(time.Since(t0))
	tr.Annotate(sp, "sentences", int64(len(ex.Sentences)))
	tr.Finish(sp)

	// Topk mode: the IVF index rides beside the embedding cache — built
	// once per story change, reused by every answer until the next
	// mutation. BuildStoryIndex is a no-op (and drops any stale index)
	// when topk is off or the story is below the exact-fallback floor.
	if s.model.TopK().Enabled {
		ib := tr.Start("index-build", tr.Root())
		t1 := time.Now()
		built := s.model.BuildStoryIndex(&sess.emb)
		if built {
			s.met.stageIndexBuild.Observe(time.Since(t1))
		}
		var bv int64
		if built {
			bv = 1
		}
		tr.Annotate(ib, "built", bv)
		tr.Finish(ib)
	}
	return nil
}

// predict runs the model over one vectorized example with pooled
// forward-pass buffers and drains the per-stage instrumentation into
// the metrics. es, when non-nil, supplies the cached embedded story;
// tr, when non-nil, receives an "infer" span with the per-hop event
// tree recorded by the instrumented pass.
//
//mnnfast:hotpath
func (s *Server) predict(ex memnn.Example, es *memnn.EmbeddedStory, tr *trace.Trace) int {
	st, _ := s.forwards.Get().(*forwardState)
	if st == nil {
		st = new(forwardState)
	}
	st.ins.Reset()
	var sp trace.SpanID
	if tr != nil {
		st.ev.Reset()
		st.ins.Ev = &st.ev
		sp = tr.Start("infer", tr.Root())
	}
	idx := s.model.PredictGated(ex, s.SkipThreshold, s.ExitPolicy, &st.f, es, &st.ins)
	s.met.observeInference(&st.ins)
	if s.ExitPolicy.Enabled() {
		s.met.observeExit(st.f.ExitHop)
	}
	if tr != nil {
		tr.AddEvents(sp, &st.ev)
		tr.Annotate(sp, "skipped", st.ins.SkippedRows)
		tr.Annotate(sp, "rows", st.ins.TotalRows)
		if st.ins.ProbedRows > 0 {
			tr.Annotate(sp, "topk_probed", st.ins.ProbedRows)
			tr.Annotate(sp, "topk_kept", st.ins.CandRows)
		}
		if s.ExitPolicy.Enabled() {
			tr.Annotate(sp, "exit_hop", int64(st.f.ExitHop))
		}
		tr.Finish(sp)
		st.ins.Ev = nil
	}
	s.forwards.Put(st)
	return idx
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Vocab:   s.corpus.Vocab.Size(),
		Answers: len(s.corpus.Answers),
		Hops:    s.model.Cfg.Hops,
		Dim:     s.model.Cfg.Dim,
		MaxSent: s.model.Cfg.MaxSent,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// A canceled or expired request must not burn a metrics collection
	// pass (GaugeFuncs take server locks); fail it like any other
	// request the server could not serve in time.
	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "request context ended: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WritePrometheus(w)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "request context ended: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.met.reg.Snapshot())
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
