package server

import (
	"fmt"
	"strconv"

	"mnnfast/internal/tensor"
)

// EnableParallelism turns on intra-query parallelism: attention story
// groups of each batched flush are dispatched across workers persistent
// pool workers through the model's work-stealing scheduler (see
// internal/sched). Results are bit-identical to serial execution — only
// wall-clock changes. Call before serving traffic; the pool is released
// by Close.
//
// The scheduler's counters are registered into the server registry so
// /v1/metrics shows the parallel runtime at work: worker count, run
// totals, and per-worker chunk/steal/idle-time counters (a scrape is
// allocation-free reads of the scheduler's padded atomics).
//
//mnnfast:coldpath
func (s *Server) EnableParallelism(workers int) error {
	if workers < 1 {
		return fmt.Errorf("server: EnableParallelism with %d workers", workers)
	}
	if s.parPool != nil {
		return fmt.Errorf("server: parallelism already enabled")
	}
	s.parPool = tensor.NewPool(workers)
	s.model.SetParallel(s.parPool)
	sch := s.model.Scheduler()

	reg := s.met.reg
	reg.GaugeFunc("mnnfast_sched_workers",
		"Worker slots available to the work-stealing chunk scheduler.",
		func() int64 { return int64(sch.Workers()) })
	reg.CounterFunc("mnnfast_sched_runs_total",
		"Parallel dispatches executed by the chunk scheduler.",
		sch.Runs)
	reg.CounterFunc("mnnfast_sched_serial_runs_total",
		"Scheduler runs executed serially (one worker or one work item).",
		sch.SerialRuns)
	for i := 0; i < sch.Workers(); i++ {
		i := i
		reg.LabeledCounterFunc("mnnfast_sched_worker_chunks_total",
			"Work chunks executed, by worker slot.", "worker", strconv.Itoa(i),
			func() int64 { return sch.WorkerChunks(i) })
	}
	for i := 0; i < sch.Workers(); i++ {
		i := i
		reg.LabeledCounterFunc("mnnfast_sched_worker_steals_total",
			"Chunks stolen from another worker's deque, by worker slot.", "worker", strconv.Itoa(i),
			func() int64 { return sch.WorkerSteals(i) })
	}
	for i := 0; i < sch.Workers(); i++ {
		i := i
		reg.LabeledCounterFunc("mnnfast_sched_worker_idle_ns_total",
			"Nanoseconds spent looking for work (own deque empty), by worker slot.", "worker", strconv.Itoa(i),
			func() int64 { return sch.WorkerIdleNS(i) })
	}
	return nil
}
