package server

import "testing"

// TestAnswerPredictAllocs asserts the inference core of an answer
// request — everything from vectorized example to predicted answer
// index — allocates nothing at steady state: forward-pass buffers are
// pooled across requests (Server.forwards). The HTTP/JSON envelope is
// deliberately outside the measurement; net/http and encoding/json
// allocate per request by design and are off the paper's hot path.
func TestAnswerPredictAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	s := testServer(t)
	ex := s.corpus.Test[0]
	s.predict(ex) // warm the forward pool at this shape
	allocs := testing.AllocsPerRun(100, func() {
		s.predict(ex)
	})
	if allocs != 0 {
		t.Errorf("answer predict path allocates %v per request, want 0", allocs)
	}
}
