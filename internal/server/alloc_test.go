package server

import (
	"testing"

	"mnnfast/internal/memnn"
)

// TestAnswerPredictAllocs asserts the inference core of an answer
// request — everything from vectorized example to predicted answer
// index, including the per-stage metric observations — allocates
// nothing at steady state: forward-pass buffers are pooled across
// requests (Server.forwards) and obs.Histogram.Observe is lock-free
// atomics. The HTTP/JSON envelope is deliberately outside the
// measurement; net/http and encoding/json allocate per request by
// design and are off the paper's hot path.
func TestAnswerPredictAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	s := testServer(t)
	ex := s.corpus.Test[0]
	s.predict(ex, nil, nil) // warm the forward pool at this shape
	allocs := testing.AllocsPerRun(100, func() {
		s.predict(ex, nil, nil)
	})
	if allocs != 0 {
		t.Errorf("answer predict path allocates %v per request, want 0", allocs)
	}
}

// TestCachedPredictAllocs is the same assertion on the embedding-cache
// hit path: predicting against a session's cached EmbeddedStory.
func TestCachedPredictAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	s := testServer(t)
	ex := s.corpus.Test[0]
	var es memnn.EmbeddedStory
	s.model.EmbedStoryInto(ex, &es)
	s.predict(ex, &es, nil)
	allocs := testing.AllocsPerRun(100, func() {
		s.predict(ex, &es, nil)
	})
	if allocs != 0 {
		t.Errorf("cached predict path allocates %v per request, want 0", allocs)
	}
}
