package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"mnnfast/internal/batcher"
	"mnnfast/internal/memnn"
	"mnnfast/internal/trace"
)

// errNoStory marks an answer item whose session has no story; the HTTP
// layer maps it to 409 exactly like the unbatched path.
var errNoStory = errors.New("no story in session; POST /v1/story first")

// BatchOptions configures dynamic micro-batching for /v1/answer.
type BatchOptions struct {
	// MaxBatch is the flush size (default batcher.DefaultMaxBatch).
	MaxBatch int
	// MaxWait is how long a partial batch waits for stragglers before
	// flushing (default batcher.DefaultMaxWait).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue (default 4×MaxBatch); a full
	// queue answers 429 with a Retry-After hint.
	QueueDepth int
	// Clock is for tests; nil means the real clock.
	Clock batcher.Clock
}

// answerItem is one /v1/answer request's trip through the batcher: the
// handler fills sess and qIDs, the batch runner fills idx/n or err.
// Items are pooled; the handler recycles them after a completed Do.
//
// The trace relay fields implement single-writer handoff: the dispatcher
// writes only these plain fields (timestamps from trace.Now, flush
// metadata, a CopyFrom of the flush's event log) and never touches the
// request's *trace.Trace; the handler reads them and builds spans after
// Do returns, ordered by the batcher's done channel. Items abandoned on
// context expiry (504) are never read by their handler afterward and
// never recycled, so the relay is race-free without further
// synchronization.
type answerItem struct {
	sess *session
	qIDs []int

	idx     int   // predicted answer index
	n       int   // session story length at answer time
	exitHop int   // hops executed (< model hops when the gate shed it)
	err     error // errNoStory, or a vectorize/embed failure

	reqID        string // X-Request-ID, for the batch-flush access log
	traced       bool   // request carries a trace; copy the event log
	flushStartNS int64  // trace.Now at flush start; 0 = never flushed
	inferStartNS int64  // trace.Now around the batched inference call
	inferEndNS   int64
	flushEndNS   int64
	flushSeq     int64 // dispatcher flush counter
	batchSize    int   // items in this item's flush
	cacheHit     bool  // session embedding cache was valid
	embedNS      int64 // >0: this item's flush embedded the session
	ev           trace.Events
}

// batchState is the dispatcher-owned scratch for runAnswerBatch, reused
// across flushes so the steady-state batched path allocates nothing.
// Only the single batcher dispatcher goroutine touches it.
type batchState struct {
	sessions []*session // distinct sessions in this batch, each locked
	wlocked  []bool     // true if sessions[j] is write-locked
	serr     []error    // per-session admission error (nil = usable)

	live    []*answerItem
	exs     []memnn.Example
	stories []*memnn.EmbeddedStory
	out     []int
	bf      memnn.BatchForward
	ins     memnn.Instrumentation

	hit      []bool  // per-session: embedding cache was valid on lock
	embNS    []int64 // per-session: time spent embedding (0 = no embed)
	ev       trace.Events
	flushSeq int64
}

// EnableBatching routes /v1/answer through a micro-batching scheduler:
// concurrent questions are coalesced into one batched inference call
// per flush (see memnn.PredictBatchInstrumented), which amortizes every
// shared matrix-row read across the batch — the serving-side realization
// of the paper's §4.1.2 batching argument. Batched answers are
// bit-identical to unbatched ones.
//
// Call once, before the server starts handling requests; pair with
// Close for a graceful drain.
func (s *Server) EnableBatching(opt BatchOptions) {
	if s.batch != nil {
		panic("server: EnableBatching called twice")
	}
	b := batcher.New(s.runAnswerBatch, batcher.Options{
		MaxBatch:   opt.MaxBatch,
		MaxWait:    opt.MaxWait,
		QueueDepth: opt.QueueDepth,
		Clock:      opt.Clock,
		Metrics:    batcher.NewMetrics(s.met.reg),
	})
	s.met.reg.GaugeFunc("mnnfast_batch_queue_length",
		"Answer requests queued awaiting batch collection.",
		func() int64 { return int64(b.QueueLen()) })
	secs := int(math.Ceil(b.MaxWait().Seconds()))
	if secs < 1 {
		secs = 1
	}
	s.retryAfter = strconv.Itoa(secs)
	s.batch = b
}

// Close drains the answer batcher (if batching is enabled): admission
// stops (new answers get 503), queued requests finish, and Close
// returns once the last batch has run — then the parallel worker pool
// (if EnableParallelism was called) shuts down. Safe to call more than
// once and on a server without batching or parallelism.
func (s *Server) Close() {
	if s.batch != nil {
		s.batch.Close()
	}
	if s.parPool != nil {
		s.parPool.Close()
		s.parPool = nil
	}
}

// answerBatched is the /v1/answer tail when batching is enabled: submit
// the vectorized question to the batcher and map the outcome onto the
// same status codes the unbatched path uses, plus the admission-control
// codes (429 queue full, 503 closed, 504 expired while queued).
func (s *Server) answerBatched(w http.ResponseWriter, r *http.Request, sess *session, qIDs []int) {
	tr := traceFrom(r.Context())
	it, _ := s.items.Get().(*answerItem)
	if it == nil {
		it = new(answerItem)
	}
	it.sess, it.qIDs, it.idx, it.n, it.exitHop, it.err = sess, qIDs, 0, 0, 0, nil
	it.reqID = w.Header().Get("X-Request-ID")
	it.traced = tr != nil
	it.flushStartNS, it.inferStartNS, it.inferEndNS, it.flushEndNS = 0, 0, 0, 0
	it.flushSeq, it.batchSize, it.cacheHit, it.embedNS = 0, 0, false, 0

	wait := tr.Start("queue-wait", tr.Root())
	err := s.batch.Do(r.Context(), it)
	switch {
	case err == nil:
		if it.flushStartNS != 0 {
			tr.FinishAt(wait, it.flushStartNS)
		} else {
			tr.Finish(wait)
		}
		s.itemSpans(tr, it)
		ierr, idx, n := it.err, it.idx, it.n
		it.sess, it.qIDs, it.err, it.reqID, it.traced = nil, nil, nil, "", false
		s.items.Put(it)
		if ierr != nil {
			if errors.Is(ierr, errNoStory) {
				httpError(w, http.StatusConflict, "%v", ierr)
			} else {
				httpError(w, http.StatusUnprocessableEntity, "%v", ierr)
			}
			return
		}
		writeJSON(w, http.StatusOK, AnswerResponse{
			Answer: s.corpus.AnswerWord(idx), Index: idx, Sentences: n,
		})
	case errors.Is(err, batcher.ErrQueueFull):
		tr.Finish(wait)
		w.Header().Set("Retry-After", s.retryAfter)
		httpError(w, http.StatusTooManyRequests, "answer queue full; retry after %ss", s.retryAfter)
	case errors.Is(err, batcher.ErrClosed):
		tr.Finish(wait)
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		tr.Finish(wait)
		// The request's context ended while it waited in the queue; the
		// item was abandoned to the dispatcher, so it is not recycled.
		httpError(w, http.StatusGatewayTimeout, "request expired while queued: %v", err)
	}
}

// runAnswerBatch answers one flushed batch with a single batched
// inference call. It runs on the batcher's dispatcher goroutine, which
// is the only multi-session lock holder in the process: every other
// locker (handleStory, the unbatched answer path) holds at most one
// session lock and never blocks on a second, so holding several here
// cannot deadlock. The self pin below records exactly that argument
// for the lockorder analyzer, which otherwise flags the loop-carried
// session.mu acquisitions lockForBatch hands back to this loop.
//
//mnnfast:lockorder session.mu < session.mu single multi-session holder: the dispatcher goroutine
//mnnfast:hotpath allow=append batch scratch slices grow only toward MaxBatch
//mnnfast:locked it.sess.mu
func (s *Server) runAnswerBatch(items []*answerItem) {
	st := &s.bstate
	st.sessions = st.sessions[:0]
	st.wlocked = st.wlocked[:0]
	st.serr = st.serr[:0]
	st.hit = st.hit[:0]
	st.embNS = st.embNS[:0]
	st.live = st.live[:0]
	st.exs = st.exs[:0]
	st.stories = st.stories[:0]
	st.flushSeq++
	flushStart := trace.Now()
	needEv := false

	for _, it := range items {
		it.flushStartNS = flushStart
		it.flushSeq = st.flushSeq
		it.batchSize = len(items)
		if it.traced {
			needEv = true
		}
		// Batches are small: a linear pointer scan dedups sessions
		// without a map allocation.
		si := -1
		for j, sess := range st.sessions {
			if sess == it.sess {
				si = j
				break
			}
		}
		dedup := si >= 0
		if si < 0 {
			si = s.lockForBatch(it.sess, st)
		} else if st.serr[si] == nil {
			s.met.cacheHits.Inc() // embedded earlier in this same batch
		}
		if err := st.serr[si]; err != nil {
			it.err = err
			continue
		}
		it.err = nil
		it.n = len(it.sess.story.Sentences)
		it.cacheHit = dedup || st.hit[si]
		it.embedNS = st.embNS[si]
		st.live = append(st.live, it)
		st.exs = append(st.exs, memnn.Example{Sentences: it.sess.cachedSentences, Question: it.qIDs})
		st.stories = append(st.stories, &it.sess.emb)
	}

	if len(st.live) > 0 {
		if cap(st.out) < len(st.live) {
			st.out = make([]int, len(st.live))
		}
		st.out = st.out[:len(st.live)]
		st.ins.Reset()
		if needEv {
			st.ev.Reset()
			st.ins.Ev = &st.ev
		}
		inferStart := trace.Now()
		s.model.PredictBatchInstrumented(st.exs, s.SkipThreshold, s.ExitPolicy, st.stories, &st.bf, &st.ins, st.out)
		inferEnd := trace.Now()
		s.met.observeInference(&st.ins)
		st.ins.Ev = nil
		gated := s.ExitPolicy.Enabled()
		for i, it := range st.live {
			it.idx = st.out[i]
			it.exitHop = st.bf.ExitHop(i)
			if gated {
				s.met.observeExit(it.exitHop)
			}
			it.inferStartNS, it.inferEndNS = inferStart, inferEnd
			if it.traced {
				it.ev.CopyFrom(&st.ev)
			}
		}
	}

	for j, sess := range st.sessions {
		if st.wlocked[j] {
			sess.mu.Unlock()
		} else {
			sess.mu.RUnlock()
		}
		st.sessions[j] = nil // don't pin sessions until the next flush
	}
	st.sessions = st.sessions[:0]

	end := trace.Now()
	for _, it := range items {
		it.flushEndNS = end
	}
	if s.AccessLog != nil {
		s.logBatchFlush(items, st.flushSeq)
	}
}

// logBatchFlush writes one access-log line per item of a flush, tying
// each request ID to the flush it rode in.
//
//mnnfast:coldpath
func (s *Server) logBatchFlush(items []*answerItem, seq int64) {
	for _, it := range items {
		s.AccessLog.Printf("batch_flush=%d batch_size=%d request_id=%s", seq, len(items), it.reqID)
	}
}

// lockForBatch acquires sess for the duration of the current flush —
// read-locked when its embedding cache is already valid, write-locked
// (after embedding) otherwise — records it in st, and returns its index.
// The cache hit/miss accounting matches the unbatched path: a valid
// cache is a hit, an embed is a miss, an empty story is neither.
//
//mnnfast:hotpath allow=append batch scratch slices grow only toward MaxBatch
func (s *Server) lockForBatch(sess *session, st *batchState) int {
	sess.mu.RLock()
	if sess.cacheValid {
		s.met.cacheHits.Inc()
		st.sessions = append(st.sessions, sess)
		st.wlocked = append(st.wlocked, false)
		st.serr = append(st.serr, nil)
		st.hit = append(st.hit, true)
		st.embNS = append(st.embNS, 0)
		return len(st.sessions) - 1
	}
	sess.mu.RUnlock()

	sess.mu.Lock()
	var serr error
	hit := false
	var embNS int64
	switch {
	case len(sess.story.Sentences) == 0:
		serr = errNoStory
	case sess.cacheValid:
		hit = true
		s.met.cacheHits.Inc() // another goroutine embedded it meanwhile
	default:
		e0 := trace.Now()
		serr = s.embedSession(sess, nil)
		embNS = trace.Now() - e0
		if serr == nil {
			s.met.cacheMisses.Inc()
		}
	}
	st.sessions = append(st.sessions, sess)
	st.wlocked = append(st.wlocked, true)
	st.serr = append(st.serr, serr)
	st.hit = append(st.hit, hit)
	st.embNS = append(st.embNS, embNS)
	return len(st.sessions) - 1
}
