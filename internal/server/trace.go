package server

import (
	"context"
	"net/http"

	"mnnfast/internal/trace"
)

// TraceOptions configures request-scoped tracing (see EnableTracing).
// Zero values take the trace package defaults.
type TraceOptions struct {
	// Capacity is the flight-recorder ring size: how many retained
	// traces GET /v1/traces can see.
	Capacity int
	// SpanCap bounds spans per trace; excess spans are dropped and
	// counted in the export.
	SpanCap int
	// SampleEvery keeps 1 in N traces that are neither errored nor
	// slow (1 = keep all). Error traces and traces slower than
	// SlowFactor × the moving mean are always kept.
	SampleEvery int
	// SlowFactor is the slow-tail multiplier over the moving mean.
	SlowFactor int
}

// EnableTracing attaches an in-memory flight recorder to the QA path:
// every /v1/story and /v1/answer request records a span tree (handler →
// vectorize → queue-wait/batch-flush → infer → per-hop → per-worker),
// the recorder retains the interesting tail (errors, slow outliers, a
// sample of the rest), and GET /v1/traces serves it back. W3C
// traceparent headers are accepted and emitted, and the answer-latency
// histogram carries exemplar trace IDs for its slow tail.
//
// Tracing never changes what the inference path computes — traced and
// untraced answers are bit-identical (see memnn.Instrumentation.Ev).
//
// Call once, before the server starts handling requests.
func (s *Server) EnableTracing(opt TraceOptions) {
	if s.rec != nil {
		panic("server: EnableTracing called twice")
	}
	rec := trace.NewRecorder(trace.Options{
		Capacity:    opt.Capacity,
		SpanCap:     opt.SpanCap,
		SampleEvery: opt.SampleEvery,
		SlowFactor:  opt.SlowFactor,
	})

	reg := s.met.reg
	reg.CounterFunc("mnnfast_traces_started_total",
		"Traces started (one per traced request).",
		func() int64 { return rec.Stats().Started })
	reg.CounterFunc("mnnfast_traces_retained_total",
		"Completed traces written to the flight recorder ring.",
		func() int64 { return rec.Stats().Retained })
	reg.LabeledCounterFunc("mnnfast_traces_kept_total",
		"Retained traces by retention rule: error (status >= 400), slow (latency above the moving threshold), sampled (1 in N of the rest).",
		"rule", "error",
		func() int64 { return rec.Stats().KeptErr })
	reg.LabeledCounterFunc("mnnfast_traces_kept_total",
		"Retained traces by retention rule: error (status >= 400), slow (latency above the moving threshold), sampled (1 in N of the rest).",
		"rule", "slow",
		func() int64 { return rec.Stats().KeptSlow })
	reg.LabeledCounterFunc("mnnfast_traces_kept_total",
		"Retained traces by retention rule: error (status >= 400), slow (latency above the moving threshold), sampled (1 in N of the rest).",
		"rule", "sampled",
		func() int64 { return rec.Stats().KeptSampled })
	reg.GaugeFunc("mnnfast_trace_latency_ewma_ns",
		"Moving mean traced-request latency (EWMA); the slow-tail retention threshold is SlowFactor times this.",
		func() int64 { return rec.Stats().EWMANS })

	s.rec = rec
}

// traceCtxKey keys the request's *trace.Trace in its context. The
// context plumbing allocates, like the rest of the HTTP envelope; only
// the inference core below it is allocation-free.
type traceCtxKey struct{}

// traceFrom extracts the request's trace; nil (all methods no-ops)
// when tracing is disabled or the handler is untraced.
func traceFrom(ctx context.Context) *trace.Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*trace.Trace)
	return tr
}

// traced reports whether tracing covers requests with this handler
// label. Only the QA path is traced; scrape endpoints would flood the
// ring with trivial traces.
func traced(label string) bool { return label == "story" || label == "answer" }

// itemSpans replays a batched answer's trip through the dispatcher —
// relayed via plain timestamp fields and a per-item event copy on the
// answerItem (see batch.go) — into the request's own trace. Runs on
// the handler goroutine after Do returns, so the trace has exactly one
// writer.
//
//mnnfast:hotpath
func (s *Server) itemSpans(tr *trace.Trace, it *answerItem) {
	if tr == nil || it.flushStartNS == 0 {
		return
	}
	fs := tr.StartAt("batch-flush", tr.Root(), it.flushStartNS)
	tr.Annotate(fs, "flush_seq", it.flushSeq)
	tr.Annotate(fs, "batch_size", int64(it.batchSize))
	if it.cacheHit {
		tr.Annotate(fs, "cache_hit", 1)
	} else {
		tr.Annotate(fs, "cache_hit", 0)
	}
	if it.embedNS > 0 {
		tr.Annotate(fs, "embed_ns", it.embedNS)
	}
	if it.err == nil && it.inferStartNS != 0 {
		is := tr.StartAt("infer", fs, it.inferStartNS)
		tr.AddEvents(is, &it.ev)
		if s.ExitPolicy.Enabled() {
			tr.Annotate(is, "exit_hop", int64(it.exitHop))
		}
		tr.FinishAt(is, it.inferEndNS)
	}
	tr.FinishAt(fs, it.flushEndNS)
}

// TraceIndexResponse is the body of GET /v1/traces.
type TraceIndexResponse struct {
	Stats  trace.Stats     `json:"stats"`
	Traces []trace.Summary `json:"traces"`
}

// handleTraceIndex serves the recent-trace index, newest first.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "tracing disabled; enable with mnnfast-serve -trace")
		return
	}
	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "request context ended: %v", err)
		return
	}
	idx := s.rec.Index()
	if idx == nil {
		idx = []trace.Summary{}
	}
	writeJSON(w, http.StatusOK, TraceIndexResponse{Stats: s.rec.Stats(), Traces: idx})
}

// handleTraceGet serves one retained trace: the JSON span tree by
// default, Chrome trace_event JSON (Perfetto-loadable) with
// ?format=chrome.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "tracing disabled; enable with mnnfast-serve -trace")
		return
	}
	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "request context ended: %v", err)
		return
	}
	id := r.PathValue("id")
	tr := s.rec.Lookup(id)
	if tr == nil {
		httpError(w, http.StatusNotFound, "trace %q not retained (evicted, sampled out, or never existed)", id)
		return
	}
	defer s.rec.Release(tr)
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = tr.WriteJSON(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = tr.WriteChrome(w)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or chrome)", r.URL.Query().Get("format"))
	}
}
