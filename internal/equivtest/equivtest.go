// Package equivtest is the repo's reusable cross-engine equivalence
// harness: one table-driven sweep that runs a generated-bAbI question
// set through every inference engine configuration — {serial, parallel
// P∈1..8} × {batched, unbatched} × {kernel tiers} × {gate off, gate on
// with a threshold that can never fire} — and asserts the answer logits
// are BIT-IDENTICAL across all of them.
//
// It replaces the ad-hoc per-PR equivalence tests with a single sweep
// other packages can call from their own tests (Run takes a testing.TB),
// and pins the determinism contracts the repo's optimizations promise:
//
//   - batched ≡ unbatched (memnn/batch.go)
//   - parallel ≡ serial at any worker count (internal/sched)
//   - gate-off ≡ pre-gate code path, and a gate that cannot fire
//     (threshold above every reachable confidence) ≡ gate-off
//     (memnn/exit.go)
//   - topk full-probe no-cut ≡ exact, topk-enabled-but-unindexed ≡
//     exact, and narrow-probe topk bit-identical across every engine
//     configuration against its own serial-unbatched baseline
//     (internal/sparse, memnn/topk.go)
//
// Kernel tiers are deliberately NOT compared against each other: the
// scalar/go/avx2 Dot kernels reassociate the reduction differently and
// are documented as not bit-identical across tiers. The harness instead
// recomputes its baseline per tier and requires every engine
// configuration to match it within that tier.
package equivtest

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
	"mnnfast/internal/tensor"
)

// Options parameterizes a sweep; zero values take defaults sized for a
// CI-friendly run (a few seconds across all tiers).
type Options struct {
	Seed    int64 // model-init and dataset seed (default 1)
	Stories int   // generated stories per task (default 16)
	Hops    int   // model hop count (default 3)
	Dim     int   // embedding dimension (default 16)
	// Skip is the zero-skipping threshold applied everywhere; the
	// default 0.01 keeps the skip branch exercised.
	Skip float32
	// Workers lists the parallel worker counts to sweep (default
	// 1, 2, 4, 8); serial is always included.
	Workers []int
	// Tiers lists the kernel tiers to sweep (default: every tier
	// available on this host).
	Tiers []string
}

func (o *Options) norm() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Stories <= 0 {
		o.Stories = 16
	}
	if o.Hops <= 0 {
		o.Hops = 3
	}
	if o.Dim <= 0 {
		o.Dim = 16
	}
	if o.Skip == 0 {
		o.Skip = 0.01
	}
	if o.Workers == nil {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Tiers == nil {
		o.Tiers = tensor.KernelTiers()
	}
}

// neverFire is an exit threshold no confidence score can reach
// (confidences live in [0, 1]), arming the gate without letting it
// fire — the gated-but-ran-all-hops leg of the determinism contract.
func neverFire() float32 { return float32(math.Inf(1)) }

// exitMetrics enumerates every gate metric the sweep arms.
var exitMetrics = []memnn.ExitMetric{memnn.ExitMargin, memnn.ExitMaxProb, memnn.ExitAttnMax}

// Run executes the full sweep against t. The active kernel tier is
// restored before returning.
func Run(t testing.TB, opt Options) {
	opt.norm()
	prev := tensor.KernelTier()
	defer func() {
		if err := tensor.SetKernelTier(prev); err != nil {
			t.Errorf("equivtest: restoring kernel tier %q: %v", prev, err)
		}
	}()
	for _, tier := range opt.Tiers {
		if err := tensor.SetKernelTier(tier); err != nil {
			t.Fatalf("equivtest: SetKernelTier(%q): %v", tier, err)
		}
		runTier(t, tier, opt)
	}
}

// fixture is one tier's model, question set, and per-question embedded
// stories. Some consecutive questions share an EmbeddedStory pointer so
// the batched path exercises multi-question story groups, not just
// singletons.
type fixture struct {
	model   *memnn.Model
	exs     []memnn.Example
	stories []*memnn.EmbeddedStory
}

func build(t testing.TB, opt Options) *fixture {
	rng := rand.New(rand.NewSource(opt.Seed))
	gen := babi.GenOptions{Stories: opt.Stories, StoryLen: 10, People: 4, Locations: 4}
	single := babi.Generate(babi.TaskSingleFact, gen, rng)
	two := babi.Generate(babi.TaskTwoFacts, gen, rng)
	corpus := memnn.BuildCorpus(single, two, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim:     opt.Dim,
		Hops:    opt.Hops,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rng)
	if err != nil {
		t.Fatalf("equivtest: NewModel: %v", err)
	}

	fx := &fixture{model: model}
	var exs []memnn.Example
	exs = append(exs, corpus.Train...)
	exs = append(exs, corpus.Test...)
	for i, ex := range exs {
		es := new(memnn.EmbeddedStory)
		model.EmbedStoryInto(memnn.Example{Sentences: ex.Sentences}, es)
		fx.exs = append(fx.exs, ex)
		fx.stories = append(fx.stories, es)
		// Every third question donates its story to a sibling question,
		// forming a genuine two-question story group in the batch.
		if i%3 == 0 && i+1 < len(exs) {
			fx.exs = append(fx.exs, memnn.Example{
				Sentences: ex.Sentences,
				Question:  exs[i+1].Question,
			})
			fx.stories = append(fx.stories, es)
		}
	}
	return fx
}

// runTier recomputes the tier's baseline (serial, unbatched, gate off)
// and checks every engine configuration against it bit for bit.
func runTier(t testing.TB, tier string, opt Options) {
	fx := build(t, opt)
	model, hops := fx.model, fx.model.Cfg.Hops

	var f memnn.Forward
	base := make([][]float32, len(fx.exs))
	for i, ex := range fx.exs {
		fw := model.ApplyInstrumented(ex, opt.Skip, &f, fx.stories[i], nil)
		base[i] = append([]float32(nil), fw.Logits...)
	}

	checkAgainst := func(baseline [][]float32, engine string, q int, got tensor.Vector) {
		t.Helper()
		want := baseline[q]
		if len(got) != len(want) {
			t.Fatalf("equivtest: tier %s, %s, q %d: %d logits, baseline has %d",
				tier, engine, q, len(got), len(want))
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("equivtest: tier %s, %s, q %d: logit %d = %x, baseline %x (not bit-identical)",
					tier, engine, q, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
	check := func(engine string, q int, got tensor.Vector) {
		t.Helper()
		checkAgainst(base, engine, q, got)
	}

	// Unbatched, gate armed per metric with a threshold that cannot
	// fire: all hops must run and the logits must not move a bit.
	for _, metric := range exitMetrics {
		policy := memnn.ExitPolicy{Metric: metric, Threshold: neverFire(), MinHops: 1}
		name := "unbatched gated-inf " + metric.String()
		for i, ex := range fx.exs {
			fw := model.ApplyGated(ex, opt.Skip, policy, &f, fx.stories[i], nil)
			if fw.ExitHop != hops {
				t.Fatalf("equivtest: tier %s, %s, q %d: exited after %d hops with an unfireable threshold, want %d",
					tier, name, i, fw.ExitHop, hops)
			}
			check(name, i, fw.Logits)
		}
	}

	// Batched and parallel-batched, gate off and gate armed-but-unfireable.
	checkBatch := func(baseline [][]float32, engine string, policy memnn.ExitPolicy) {
		t.Helper()
		var bf memnn.BatchForward
		out := make([]int, len(fx.exs))
		model.PredictBatchInstrumented(fx.exs, opt.Skip, policy, fx.stories, &bf, nil, out)
		for q := range fx.exs {
			if policy.Enabled() {
				if got := bf.ExitHop(q); got != hops {
					t.Fatalf("equivtest: tier %s, %s, q %d: exit hop %d with an unfireable threshold, want %d",
						tier, engine, q, got, hops)
				}
			}
			checkAgainst(baseline, engine, q, bf.Logits(q))
		}
	}
	gatedInf := memnn.ExitPolicy{Metric: memnn.ExitMargin, Threshold: neverFire(), MinHops: 1}
	batchSweep := func(baseline [][]float32, prefix string) {
		t.Helper()
		checkBatch(baseline, prefix+"batched serial gate-off", memnn.ExitPolicy{})
		checkBatch(baseline, prefix+"batched serial gated-inf", gatedInf)
		for _, p := range opt.Workers {
			pool := tensor.NewPool(p)
			model.SetParallel(pool)
			checkBatch(baseline, prefix+"batched P="+strconv.Itoa(p)+" gate-off", memnn.ExitPolicy{})
			checkBatch(baseline, prefix+"batched P="+strconv.Itoa(p)+" gated-inf", gatedInf)
			model.SetParallel(nil)
			pool.Close()
		}
	}
	batchSweep(base, "")

	// Approximate top-k attention. Three contracts, in order:
	//
	//  1. topk enabled but the stories never indexed (the MinRows
	//     fallback and the pre-ingest state) runs the exact path —
	//     logits match the exact baseline bit for bit.
	//  2. A full-width probe with no top-k cut visits every row in
	//     ascending order, so it too reproduces the exact baseline
	//     bit for bit (the degenerate-index identity).
	//  3. A genuinely narrow probe changes the answer, so it gets its
	//     own serial-unbatched baseline; every engine configuration —
	//     gated-unfireable, batched, parallel-batched — must reproduce
	//     THAT baseline bit for bit.
	model.SetTopK(memnn.TopKConfig{Enabled: true, K: 0, NProbe: 1 << 20, MinRows: 1})
	for i, ex := range fx.exs {
		fw := model.ApplyInstrumented(ex, opt.Skip, &f, fx.stories[i], nil)
		check("topk unindexed fallback", i, fw.Logits)
	}
	built := make(map[*memnn.EmbeddedStory]bool, len(fx.stories))
	for _, es := range fx.stories {
		// Shared-story questions alias one EmbeddedStory; build once.
		if !built[es] {
			if !model.BuildStoryIndex(es) {
				t.Fatalf("equivtest: tier %s: BuildStoryIndex declined with MinRows=1", tier)
			}
			built[es] = true
		}
	}
	for i, ex := range fx.exs {
		fw := model.ApplyInstrumented(ex, opt.Skip, &f, fx.stories[i], nil)
		check("topk full-probe", i, fw.Logits)
	}

	// Narrow probe: K/NProbe are query-time knobs, so the indices built
	// above stay valid.
	model.SetTopK(memnn.TopKConfig{Enabled: true, K: 4, NProbe: 1, MinRows: 1})
	topkBase := make([][]float32, len(fx.exs))
	for i, ex := range fx.exs {
		fw := model.ApplyInstrumented(ex, opt.Skip, &f, fx.stories[i], nil)
		topkBase[i] = append([]float32(nil), fw.Logits...)
	}
	for _, metric := range exitMetrics {
		policy := memnn.ExitPolicy{Metric: metric, Threshold: neverFire(), MinHops: 1}
		name := "topk unbatched gated-inf " + metric.String()
		for i, ex := range fx.exs {
			fw := model.ApplyGated(ex, opt.Skip, policy, &f, fx.stories[i], nil)
			if fw.ExitHop != hops {
				t.Fatalf("equivtest: tier %s, %s, q %d: exited after %d hops with an unfireable threshold, want %d",
					tier, name, i, fw.ExitHop, hops)
			}
			checkAgainst(topkBase, name, i, fw.Logits)
		}
	}
	batchSweep(topkBase, "topk ")
	model.SetTopK(memnn.TopKConfig{})
}
