package equivtest

import "testing"

// TestEquivalenceSweep is the CI entry point of the harness: every
// engine configuration over the default generated-bAbI set must be
// bit-identical within each kernel tier. Other packages invoke the same
// sweep with their own Options via Run.
func TestEquivalenceSweep(t *testing.T) {
	Run(t, Options{})
}

// TestEquivalenceSweepDeep widens the sweep (more stories, a larger
// model) for the dedicated equivalence CI job; -short keeps it out of
// the ordinary unit-test wall clock.
func TestEquivalenceSweepDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep skipped in -short mode")
	}
	Run(t, Options{Seed: 2, Stories: 48, Hops: 4, Dim: 24})
}
