package embed

import (
	"math/rand"
	"testing"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

func TestNewTableShape(t *testing.T) {
	tb := NewTable(10, 8)
	if tb.Words() != 10 || tb.Dim != 8 {
		t.Fatalf("table shape = %dx%d", tb.Words(), tb.Dim)
	}
}

func TestNewTableInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(0, 4) did not panic")
		}
	}()
	NewTable(0, 4)
}

func TestVectorLookupAndTrace(t *testing.T) {
	tb := NewTable(5, 4)
	tb.Mat.Set(3, 2, 7)
	var c memtrace.Counter
	v := tb.Vector(&c, 3)
	if v[2] != 7 {
		t.Errorf("Vector(3)[2] = %v, want 7", v[2])
	}
	if c.Accesses[memtrace.RegionEmbedding][memtrace.OpRead] != 1 {
		t.Errorf("expected 1 traced read, got %+v", c.Accesses)
	}
	if c.Bytes[memtrace.RegionEmbedding][memtrace.OpRead] != 16 {
		t.Errorf("expected 16 traced bytes (ed=4 × 4B), got %d", c.Bytes[memtrace.RegionEmbedding][memtrace.OpRead])
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vector(99) did not panic")
		}
	}()
	NewTable(5, 4).Vector(nil, 99)
}

func TestEncodeBoWSumsVectors(t *testing.T) {
	tb := NewTable(4, 3)
	tb.Mat.Row(1).Fill(1)
	tb.Mat.Row(2).Fill(10)
	dst := tensor.NewVector(3)
	tb.EncodeBoW(nil, []int{1, 2, 2}, dst)
	for _, x := range dst {
		if x != 21 {
			t.Fatalf("EncodeBoW = %v, want all 21", dst)
		}
	}
}

func TestEncodeBoWSkipsPadding(t *testing.T) {
	tb := NewTable(3, 2)
	tb.Mat.Row(0).Fill(100) // pad vector must never contribute
	tb.Mat.Row(1).Fill(1)
	dst := tensor.NewVector(2)
	var c memtrace.Counter
	tb.EncodeBoW(&c, []int{0, 1, 0}, dst)
	if dst[0] != 1 {
		t.Errorf("padding contributed to the sum: %v", dst)
	}
	if got := c.Accesses[memtrace.RegionEmbedding][memtrace.OpRead]; got != 1 {
		t.Errorf("padding lookups should not be traced: %d reads", got)
	}
}

func TestEncodeBoWOverwritesDst(t *testing.T) {
	tb := NewTable(2, 2)
	dst := tensor.Vector{99, 99}
	tb.EncodeBoW(nil, nil, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("EncodeBoW must zero dst first: %v", dst)
	}
}

func TestEncodePositionEmptySentence(t *testing.T) {
	tb := NewTable(2, 2)
	dst := tensor.Vector{5, 5}
	tb.EncodePosition(nil, []int{0, 0}, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("all-padding sentence should embed to zero: %v", dst)
	}
}

func TestEncodePositionDiffersFromBoWOnReorderedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := NewRandomTable(rng, 10, 6)
	a := tensor.NewVector(6)
	b := tensor.NewVector(6)
	tb.EncodePosition(nil, []int{1, 2, 3}, a)
	tb.EncodePosition(nil, []int{3, 2, 1}, b)
	if tensor.MaxAbsDiff(a, b) < 1e-6 {
		t.Error("position encoding should distinguish word order")
	}
	// BoW, by contrast, must not.
	tb.EncodeBoW(nil, []int{1, 2, 3}, a)
	tb.EncodeBoW(nil, []int{3, 2, 1}, b)
	if tensor.MaxAbsDiff(a, b) > 1e-5 {
		t.Error("BoW encoding must be order-invariant")
	}
}

func TestEncodePositionWeightsSumToBoWForConstantVectors(t *testing.T) {
	// With ed=1 the position weights are l_j = (1-j/J) - (1)·(1-2j/J)
	// = j/J; their sum over j=1..J is (J+1)/2. For constant word
	// vectors the position encoding is that multiple of the BoW sum.
	tb := NewTable(3, 1)
	tb.Mat.Row(1).Fill(2)
	dst := tensor.NewVector(1)
	tb.EncodePosition(nil, []int{1, 1, 1}, dst)
	want := float32(2) * (1.0/3 + 2.0/3 + 3.0/3)
	if d := dst[0] - want; d > 1e-5 || d < -1e-5 {
		t.Errorf("EncodePosition = %v, want %v", dst[0], want)
	}
}

func TestEncoderDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tb := NewRandomTable(rng, 8, 4)
	bow := Encoder{Table: tb}
	pos := Encoder{Table: tb, Position: true}
	a := tensor.NewVector(4)
	b := tensor.NewVector(4)
	words := []int{1, 2, 3, 4}
	bow.Encode(nil, words, a)
	pos.Encode(nil, words, b)
	if tensor.MaxAbsDiff(a, b) < 1e-6 {
		t.Error("encoder Position flag had no effect")
	}
}

func TestEncodeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tb := NewRandomTable(rng, 8, 4)
	enc := Encoder{Table: tb}
	sentences := [][]int{{1, 2}, {3}, {4, 5, 6}}
	dst := tensor.NewMatrix(3, 4)
	enc.EncodeAll(nil, sentences, dst)
	want := tensor.NewVector(4)
	tb.EncodeBoW(nil, sentences[2], want)
	if tensor.MaxAbsDiff(dst.Row(2), want) != 0 {
		t.Error("EncodeAll row 2 does not match direct encoding")
	}
}

func TestEncodeAllShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeAll with wrong dst shape did not panic")
		}
	}()
	tb := NewTable(4, 4)
	(&Encoder{Table: tb}).EncodeAll(nil, [][]int{{1}}, tensor.NewMatrix(2, 4))
}

func TestTraceBytesProportionalToWords(t *testing.T) {
	tb := NewTable(100, 16)
	var c memtrace.Counter
	dst := tensor.NewVector(16)
	tb.EncodeBoW(&c, []int{1, 2, 3, 4, 5}, dst)
	wantBytes := int64(5 * 16 * 4)
	if got := c.RegionBytes(memtrace.RegionEmbedding); got != wantBytes {
		t.Errorf("traced bytes = %d, want %d", got, wantBytes)
	}
}
