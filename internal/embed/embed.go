// Package embed implements the embedding operation of a memory network:
// converting sentences into internal state vectors by bag-of-words
// lookups into an embedding matrix (§2.1 of the MnnFast paper).
//
// The embedding matrix is stored word-major (V rows of ed floats) so a
// word's vector is one contiguous O(1) lookup, matching the paper's
// array implementation. Lookups are instrumented through memtrace so the
// cache-contention (Fig 4) and embedding-cache (Fig 14) experiments can
// replay the exact access stream.
package embed

import (
	"fmt"
	"math/rand"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// Table is an embedding matrix with V rows of dimension ed.
type Table struct {
	Dim  int            // ed, the embedding dimension
	Mat  *tensor.Matrix // V×ed, row i is the vector of word ID i
	Term memtrace.Region
}

// NewTable returns a zero-initialized table for a vocabulary of v words.
func NewTable(v, dim int) *Table {
	if v < 1 || dim < 1 {
		panic(fmt.Sprintf("embed: NewTable(%d, %d): invalid shape", v, dim))
	}
	return &Table{Dim: dim, Mat: tensor.NewMatrix(v, dim), Term: memtrace.RegionEmbedding}
}

// NewRandomTable returns a table with N(0, 0.1²) entries, the init used
// by end-to-end memory networks.
func NewRandomTable(rng *rand.Rand, v, dim int) *Table {
	t := NewTable(v, dim)
	t.Mat = tensor.GaussianMatrix(rng, v, dim, 0.1)
	return t
}

// Words returns the vocabulary size V of the table.
func (t *Table) Words() int { return t.Mat.Rows }

// Vector returns the embedding vector of word ID w, reporting the lookup
// to tr (if non-nil). The returned vector aliases table storage.
func (t *Table) Vector(tr memtrace.Toucher, w int) tensor.Vector {
	if w < 0 || w >= t.Mat.Rows {
		panic(fmt.Sprintf("embed: word ID %d out of range [0, %d)", w, t.Mat.Rows))
	}
	memtrace.Touch(tr, t.Term, memtrace.OpRead, int64(w)*int64(t.Dim)*4, t.Dim*4)
	return t.Mat.Row(w)
}

// EncodeBoW computes the bag-of-words sentence embedding: the sum of the
// word vectors, written into dst (length ed). Word ID 0 (padding) is
// skipped. This is the paper's embedding operation: one table lookup and
// one vector add per word.
func (t *Table) EncodeBoW(tr memtrace.Toucher, words []int, dst tensor.Vector) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("embed: EncodeBoW dst length %d != dim %d", len(dst), t.Dim))
	}
	dst.Zero()
	for _, w := range words {
		if w == 0 {
			continue
		}
		tensor.Axpy(1, t.Vector(tr, w), dst)
	}
}

// EncodePosition computes the position-encoded sentence embedding of
// Sukhbaatar et al. (2015): word j of J is weighted element-wise by
//
//	l_kj = (1 - j/J) - (k/ed)·(1 - 2j/J)
//
// (1-based j, k). Position encoding preserves word order information
// that plain BoW discards; the paper notes some studies multiply
// position weights before summing (§2.1 footnote).
func (t *Table) EncodePosition(tr memtrace.Toucher, words []int, dst tensor.Vector) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("embed: EncodePosition dst length %d != dim %d", len(dst), t.Dim))
	}
	dst.Zero()
	nonPad := 0
	for _, w := range words {
		if w != 0 {
			nonPad++
		}
	}
	if nonPad == 0 {
		return
	}
	j := 0
	bigJ := float32(nonPad)
	d := float32(t.Dim)
	for _, w := range words {
		if w == 0 {
			continue
		}
		j++
		vec := t.Vector(tr, w)
		fj := float32(j)
		a := 1 - fj/bigJ
		b := 1 - 2*fj/bigJ
		for k := 0; k < t.Dim; k++ {
			l := a - (float32(k+1)/d)*b
			dst[k] += l * vec[k]
		}
	}
}

// Encoder converts tokenized sentences into state vectors using a
// Table and a configurable encoding scheme.
type Encoder struct {
	Table    *Table
	Position bool // use position encoding instead of plain BoW
}

// Encode writes the sentence embedding of words into dst.
func (e *Encoder) Encode(tr memtrace.Toucher, words []int, dst tensor.Vector) {
	if e.Position {
		e.Table.EncodePosition(tr, words, dst)
		return
	}
	e.Table.EncodeBoW(tr, words, dst)
}

// EncodeAll encodes each sentence into the corresponding row of dst
// (len(sentences)×ed).
func (e *Encoder) EncodeAll(tr memtrace.Toucher, sentences [][]int, dst *tensor.Matrix) {
	if dst.Rows != len(sentences) || dst.Cols != e.Table.Dim {
		panic(fmt.Sprintf("embed: EncodeAll dst %dx%d does not fit %d sentences of dim %d",
			dst.Rows, dst.Cols, len(sentences), e.Table.Dim))
	}
	for i, s := range sentences {
		e.Encode(tr, s, dst.Row(i))
	}
}
