package memtrace

import (
	"strings"
	"testing"
)

func TestRegionStrings(t *testing.T) {
	want := map[Region]string{
		RegionEmbedding: "embedding",
		RegionMemIn:     "mem_in",
		RegionMemOut:    "mem_out",
		RegionQuestion:  "question",
		RegionTempIn:    "temp_in",
		RegionTempPexp:  "temp_pexp",
		RegionTempP:     "temp_p",
		RegionOutput:    "output",
		RegionWeights:   "weights",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Region(%d).String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if !strings.Contains(Region(99).String(), "99") {
		t.Errorf("out-of-range region string = %q", Region(99).String())
	}
	if NumRegions != len(want) {
		t.Errorf("NumRegions = %d, want %d", NumRegions, len(want))
	}
}

func TestOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpPrefetch.String() != "prefetch" {
		t.Error("op names wrong")
	}
	if Op(9).String() != "op(?)" {
		t.Errorf("unknown op string = %q", Op(9).String())
	}
}

func TestTouchNilIsNoop(t *testing.T) {
	// Must not panic.
	Touch(nil, RegionMemIn, OpRead, 0, 64)
}

func TestCounter(t *testing.T) {
	var c Counter
	Touch(&c, RegionMemIn, OpRead, 0, 64)
	Touch(&c, RegionMemIn, OpWrite, 64, 32)
	Touch(&c, RegionEmbedding, OpPrefetch, 0, 128)
	if c.TotalBytes() != 224 {
		t.Errorf("TotalBytes = %d, want 224", c.TotalBytes())
	}
	if c.RegionBytes(RegionMemIn) != 96 {
		t.Errorf("RegionBytes(mem_in) = %d, want 96", c.RegionBytes(RegionMemIn))
	}
	if c.Accesses[RegionEmbedding][OpPrefetch] != 1 {
		t.Error("prefetch access not counted")
	}
}
