// Package memtrace defines the lightweight instrumentation contract
// between the inference engines and the memory-hierarchy simulator.
//
// The MnnFast paper quantifies its claims with hardware performance
// counters (off-chip access counts, Fig 11; cache contention, Fig 4) and
// with a custom embedding cache (Fig 14). This repository reproduces
// those measurements by having every engine optionally report its
// logical memory accesses — at vector granularity, tagged with the data
// region being touched — to a Toucher. The cache simulator
// (internal/cachesim) implements Toucher and replays the accesses
// against modelled caches and DRAM.
//
// Engines hold a possibly-nil Toucher; a nil Toucher costs one branch
// per reported access, so real wall-clock benchmarks run untraced.
package memtrace

import "fmt"

// Region identifies the logical data structure an access touches. The
// paper's analysis distinguishes exactly these flows (Fig 5): the
// embedding matrix, the input/output memories, the question state, the
// intermediate spill vectors, and the model weights.
type Region int

// Data regions of the MemNN working set.
const (
	RegionEmbedding Region = iota // embedding matrix (ed×V)
	RegionMemIn                   // input memory M_IN (ns×ed)
	RegionMemOut                  // output memory M_OUT (ns×ed)
	RegionQuestion                // question state U
	RegionTempIn                  // intermediate T_IN = u·M_INᵀ (ns)
	RegionTempPexp                // intermediate P_exp = exp(T_IN) (ns)
	RegionTempP                   // intermediate P = softmax (ns)
	RegionOutput                  // response/output vectors (ed)
	RegionWeights                 // FC weights W
	numRegions
)

// NumRegions is the count of distinct regions, for sizing per-region
// statistics tables.
const NumRegions = int(numRegions)

var regionNames = [...]string{
	"embedding", "mem_in", "mem_out", "question",
	"temp_in", "temp_pexp", "temp_p", "output", "weights",
}

// String returns the lower-case region name used in experiment output.
func (r Region) String() string {
	if r < 0 || int(r) >= len(regionNames) {
		return fmt.Sprintf("region(%d)", int(r))
	}
	return regionNames[r]
}

// Op distinguishes demand reads, writes, and prefetches. The cache
// simulator fills lines on prefetch without counting a demand off-chip
// access — which is how streaming converts compulsory misses into hits
// (the paper's Fig 11 accounting).
type Op int

// Access operations.
const (
	OpRead Op = iota
	OpWrite
	OpPrefetch
	numOps
)

// NumOps is the count of distinct operations, for sizing statistics
// tables.
const NumOps = int(numOps)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpPrefetch:
		return "prefetch"
	}
	return "op(?)"
}

// Toucher receives logical memory accesses. Offset is the byte offset
// within the region's address space and bytes is the contiguous extent
// touched. Implementations must tolerate concurrent calls only if the
// engine driving them is run with a parallel pool; the provided
// simulator is used single-threaded by the experiments.
type Toucher interface {
	Touch(region Region, op Op, offset int64, bytes int)
}

// Touch reports an access to t if t is non-nil. All engine code funnels
// through this helper so the untraced path stays a single branch.
func Touch(t Toucher, region Region, op Op, offset int64, bytes int) {
	if t != nil {
		t.Touch(region, op, offset, bytes)
	}
}

// Counter is a trivial Toucher that tallies bytes per region and op.
// Tests and quick experiments use it when full cache simulation is not
// needed.
type Counter struct {
	Bytes    [NumRegions][NumOps]int64
	Accesses [NumRegions][NumOps]int64
}

// Touch implements Toucher.
func (c *Counter) Touch(region Region, op Op, offset int64, bytes int) {
	c.Bytes[region][op] += int64(bytes)
	c.Accesses[region][op]++
}

// TotalBytes returns the sum of all traffic seen by the counter.
func (c *Counter) TotalBytes() int64 {
	var t int64
	for r := 0; r < NumRegions; r++ {
		for o := 0; o < NumOps; o++ {
			t += c.Bytes[r][o]
		}
	}
	return t
}

// RegionBytes returns the total bytes for one region across all ops.
func (c *Counter) RegionBytes(r Region) int64 {
	var t int64
	for o := 0; o < NumOps; o++ {
		t += c.Bytes[r][o]
	}
	return t
}
