# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test test-notavx2 test-equiv race lint lint-sarif lint-update-baseline vet fmt bench fuzz-smoke trace-demo clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fallback-tier coverage: downgrade the CPUID probe so kernel dispatch
# resolves to the portable go tier (see internal/tensor/dispatch.go).
test-notavx2:
	GODEBUG=cpu.avx2=off,cpu.avx=off $(GO) test ./internal/tensor/... ./internal/core/...

# Cross-engine equivalence sweep (internal/equivtest): every inference
# configuration — serial/parallel, batched/unbatched, kernel tiers,
# gate off/armed-but-unfireable — must be bit-identical per tier.
test-equiv:
	$(GO) test -count=1 -v -run 'TestEquivalenceSweep' ./internal/equivtest/

# Full race-detector sweep (the nightly CI job); slow but exhaustive.
race:
	$(GO) test -race -count=1 ./...

# The repo's own analyzers (asmtwin, hotalloc, poolescape, atomicfield,
# guardedby, floatdet, lockorder, ctxleak — see internal/lint and
# DESIGN.md §9/§14). Findings are diffed against lint.baseline: new
# findings exit 2, stale baseline entries exit 1.
lint:
	$(GO) run ./cmd/mnnfast-lint -baseline lint.baseline ./...

# Same findings as SARIF 2.1.0, for GitHub code scanning or local
# viewers. CI uploads this file on every PR.
lint-sarif:
	$(GO) run ./cmd/mnnfast-lint -baseline lint.baseline -format=sarif -o lint.sarif ./...

# Rewrite lint.baseline from the current findings. Run after fixing a
# baselined finding (stale entries fail `make lint`); adding new debt
# needs a reason in the PR.
lint-update-baseline:
	$(GO) run ./cmd/mnnfast-lint -baseline lint.baseline -update-baseline ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# End-to-end tracing walkthrough: start a batched, parallel server
# with the flight recorder keeping every trace, drive it with the load
# generator, and print the span tree of the slowest answer (see
# README "Tracing" and DESIGN.md §12).
trace-demo:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/mnnfast-serve ./cmd/mnnfast-loadgen || exit 1; \
	$$tmp/mnnfast-serve -addr 127.0.0.1:18080 -batch-max 8 -parallelism 2 -trace-sample 1 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://127.0.0.1:18080/v1/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	$$tmp/mnnfast-loadgen -url http://127.0.0.1:18080 -sessions 4 -questions 10 -slowest 1

# Exercise each fuzz target briefly against its seed corpus.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzStoryJSON -fuzztime=10s ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzAnswerJSON -fuzztime=10s ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzTokenize -fuzztime=10s ./internal/vocab/
	$(GO) test -run=^$$ -fuzz=FuzzKernelTiers -fuzztime=10s ./internal/tensor/
	$(GO) test -run=^$$ -fuzz=FuzzExitPolicy -fuzztime=10s ./internal/memnn/
	$(GO) test -run=^$$ -fuzz=FuzzTopKIndex -fuzztime=10s ./internal/sparse/

clean:
	$(GO) clean ./...
