// Command mnnfast-train trains an end-to-end memory network on a
// bAbI-style task — either a synthetic task family or a real bAbI
// format file — reports accuracy and the zero-skipping tradeoff, and
// optionally saves the trained model.
//
// Usage:
//
//	mnnfast-train -task single-fact -stories 1000 -epochs 40 -out model.gob
//	mnnfast-train -file qa1_train.txt -epochs 60
//	mnnfast-train -task two-facts -sweep           # Figure-7 style threshold sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

func main() {
	var (
		task    = flag.String("task", "single-fact", "synthetic task: single-fact, two-facts, yes-no, counting, before")
		file    = flag.String("file", "", "train from a real bAbI-format file instead of a synthetic task")
		stories = flag.Int("stories", 1000, "synthetic stories to generate")
		slen    = flag.Int("storylen", 20, "sentences per synthetic story")
		dim     = flag.Int("dim", 20, "embedding dimension")
		hops    = flag.Int("hops", 2, "memory hops")
		epochs  = flag.Int("epochs", 40, "training epochs")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "save the trained model to this file")
		sweep   = flag.Bool("sweep", false, "report the zero-skipping threshold sweep after training")
		report  = flag.Bool("report", false, "print per-answer accuracy and top confusions")
		batch   = flag.Int("batch", 0, "mini-batch size (0 = per-example SGD)")
		lstart  = flag.Int("linearstart", 0, "linear-start epochs (attention softmax disabled)")
		quiet   = flag.Bool("quiet", false, "suppress per-epoch loss output")
	)
	flag.Parse()

	dataset, err := loadDataset(*file, *task, *stories, *slen, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnnfast-train:", err)
		os.Exit(1)
	}
	train, test := dataset.Split(0.8)
	corpus := memnn.BuildCorpus(train, test, 0)
	fmt.Printf("dataset: %s\nvocab: %d words, %d answers, memory %d sentences\n",
		dataset, corpus.Vocab.Size(), len(corpus.Answers), corpus.MaxSent)

	model, err := memnn.NewModel(memnn.Config{
		Dim:     *dim,
		Hops:    *hops,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnnfast-train:", err)
		os.Exit(1)
	}
	fmt.Printf("model: %d hops, dim %d, %d parameters\n", *hops, *dim, model.NumParams())

	opt := memnn.DefaultTrainOptions()
	opt.Epochs = *epochs
	opt.Seed = *seed
	opt.BatchSize = *batch
	opt.LinearStartEpochs = *lstart
	if !*quiet {
		opt.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if _, err := model.Train(corpus.Train, opt); err != nil {
		fmt.Fprintln(os.Stderr, "mnnfast-train:", err)
		os.Exit(1)
	}

	fmt.Printf("train accuracy: %.3f\n", model.Accuracy(corpus.Train, 0))
	fmt.Printf("test accuracy:  %.3f\n", model.Accuracy(corpus.Test, 0))
	sp := model.SparsityOf(corpus.Test, 100)
	fmt.Printf("attention sparsity: %.1f%% of p-values < 0.1; mean top p %.2f\n",
		100*sp.MeanBelow01, sp.MeanTopMass)

	if *report {
		fmt.Println()
		model.Evaluate(corpus, corpus.Test, 0).Fprint(os.Stdout)
	}

	if *sweep {
		fmt.Println("\nzero-skipping sweep (paper Figure 7):")
		for _, th := range []float32{0.001, 0.01, 0.05, 0.1, 0.2, 0.5} {
			fmt.Println(" ", model.EvaluateSkip(corpus.Test, th))
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mnnfast-train:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := memnn.Save(f, model, corpus); err != nil {
			fmt.Fprintln(os.Stderr, "mnnfast-train:", err)
			os.Exit(1)
		}
		fmt.Println("model saved to", *out)
	}
}

func loadDataset(file, task string, stories, slen int, seed int64) (*babi.Dataset, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return babi.Parse(f, file)
	}
	for _, t := range babi.AllTasks() {
		if t.String() == task {
			opt := babi.GenOptions{Stories: stories, StoryLen: slen, People: 4, Locations: 4}
			return babi.Generate(t, opt, rand.New(rand.NewSource(seed))), nil
		}
	}
	return nil, fmt.Errorf("unknown task %q", task)
}
