// mnnfast-lint runs the repo's custom static analyzers (hotalloc,
// poolescape, atomicfield, guardedby, floatdet, lockorder, ctxleak,
// asmtwin — see internal/lint) over Go packages. Two modes:
//
// Standalone, over package patterns — the whole-program mode: the tool
// loads the targets plus their in-module dependencies, computes
// per-package facts in dependency order, and checks cross-package
// invariants (hot-set propagation, pool ownership, guarded fields,
// lock-order cycles):
//
//	go run ./cmd/mnnfast-lint ./...
//	go run ./cmd/mnnfast-lint -checks hotalloc,floatdet ./internal/tensor
//	go run ./cmd/mnnfast-lint -format=sarif -o lint.sarif ./...
//	go run ./cmd/mnnfast-lint -baseline lint.baseline ./...
//
// As a go vet tool, which scopes each invocation to one compilation
// unit and caches results in the build cache. Facts flow through vet's
// own fact files (PackageVetx/VetxOutput), so cross-package checks work
// here too:
//
//	go vet -vettool=$(pwd)/bin/mnnfast-lint ./...
//
// In vet mode the binary speaks cmd/go's vettool protocol: it answers
// -V=full with a stable version line (go uses it as the tool's cache
// ID), then receives a vet.cfg JSON path naming the unit's files and
// the export data of its dependencies. Exit status is 0 when clean,
// 2 with diagnostics on stderr, 1 on driver errors — including stale
// baseline entries, which must be deleted, not ignored.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mnnfast/internal/lint"
	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/baseline"
	"mnnfast/internal/lint/factbuild"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/load"
	"mnnfast/internal/lint/report"
)

// version is the tool identity reported to the go command's -V=full
// handshake; bump it when analyzer behavior changes so stale cached
// vet results are invalidated. The facts wire version rides along so a
// format change alone also invalidates caches.
const version = "v0.6.0+facts." + facts.Version

func main() {
	// The go command probes `tool -V=full` before anything else; the
	// reply must be `<basename> version <id>`.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" {
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		}
	}

	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	output := flag.String("o", "", "write findings to this file instead of stderr/stdout")
	baselinePath := flag.String("baseline", "", "subtract findings listed in this baseline file; stale entries fail the run")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from this run's findings and exit 0")

	// The go command's second probe is `tool -flags`, expecting a JSON
	// description of the flags the tool accepts.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagDefs()
		return
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], as)
		return
	}
	standalone(args, as, options{
		format:         *format,
		output:         *output,
		baselinePath:   *baselinePath,
		updateBaseline: *updateBaseline,
	})
}

// printFlagDefs answers the go command's `-flags` probe with the JSON
// shape cmd/go expects (the same one x/tools' unitchecker emits).
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(defs)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return lint.Analyzers(), nil
	}
	var as []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a := lint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		as = append(as, a)
	}
	return as, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mnnfast-lint: %v\n", err)
	os.Exit(1)
}

type options struct {
	format         string
	output         string
	baselinePath   string
	updateBaseline bool
}

// standalone loads the given patterns (default ./...) plus their
// in-module dependencies and runs the suite whole-program: facts first,
// dependency order, then diagnostics over the pattern matches.
func standalone(patterns []string, as []*analysis.Analyzer, opts options) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.PackagesDeps(".", patterns)
	if err != nil {
		fatal(err)
	}
	diags, where, err := lint.RunWhole(pkgs, as)
	if err != nil {
		fatal(err)
	}
	root, err := os.Getwd()
	if err != nil {
		root = ""
	}
	var fset *token.FileSet
	if len(where) > 0 {
		fset = where[0].Fset // PackagesDeps shares one FileSet across packages
	} else if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}
	findings := report.Resolve(root, fset, diags)

	if opts.baselinePath != "" && opts.updateBaseline {
		var buf bytes.Buffer
		if err := baseline.Write(&buf, findings); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(opts.baselinePath, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mnnfast-lint: baseline %s updated with %d finding(s)\n", opts.baselinePath, len(findings))
		return
	}

	var stale []string
	if opts.baselinePath != "" {
		f, err := os.Open(opts.baselinePath)
		if err != nil {
			fatal(err)
		}
		bl, err := baseline.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		findings, stale = bl.Apply(findings)
	}

	out := os.Stderr
	if opts.output != "" {
		f, err := os.Create(opts.output)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	} else if opts.format != "text" {
		out = os.Stdout
	}

	switch opts.format {
	case "text":
		if err := report.Text(out, findings); err != nil {
			fatal(err)
		}
	case "json":
		if err := report.JSON(out, findings); err != nil {
			fatal(err)
		}
	case "sarif":
		if err := report.SARIF(out, findings, as); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or sarif)", opts.format))
	}

	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "mnnfast-lint: stale baseline entry (no longer fires, delete it): %s\n", s)
	}
	switch {
	case len(stale) > 0:
		fmt.Fprintf(os.Stderr, "mnnfast-lint: %d stale baseline entr(ies) in %s\n", len(stale), opts.baselinePath)
		os.Exit(1)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "mnnfast-lint: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	GoVersion string

	SucceedOnTypecheckFailure bool
}

// unitcheck runs in go vet -vettool mode over one compilation unit.
// Facts ride vet's fact-file protocol: PackageVetx maps each dependency
// to the facts it wrote earlier, VetxOutput is where this unit's facts
// go (the go command caches and forwards them to dependents).
func unitcheck(cfgPath string, as []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}

	// Imported facts. Dependency order does not matter for correctness
	// here — each entry is already transitively folded — but keep it
	// deterministic anyway. Undecodable files (older tool versions'
	// stamps) degrade to "no facts".
	depFacts := facts.NewSet()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		f, err := os.Open(cfg.PackageVetx[path])
		if err != nil {
			continue
		}
		fp, err := facts.Decode(f)
		f.Close()
		if err == nil && fp != nil {
			depFacts.Add(fp)
		}
	}

	writeVetx := func(fp *facts.Package) {
		if cfg.VetxOutput == "" {
			return
		}
		if fp == nil {
			fp = &facts.Package{Path: cfg.ImportPath}
		}
		var buf bytes.Buffer
		if err := fp.Encode(&buf); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, buf.Bytes(), 0o666); err != nil {
			fatal(err)
		}
	}

	fset := token.NewFileSet()
	imp := load.Importer(fset, cfg.ImportMap, func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q in vet config %s", path, cfg.ID)
		}
		return file, nil
	})
	// The invariants target production code: go vet also hands us test
	// units, whose _test.go files are free to allocate, format, and
	// poke fields without locks, so they are excluded here (standalone
	// mode never sees them — `go list` GoFiles excludes tests).
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx(nil)
		return
	}
	pkg, err := load.Check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return
		}
		fatal(err)
	}
	pkg.Dir = cfg.Dir
	pkg.Facts = depFacts

	if cfg.ModulePath != "" {
		writeVetx(factbuild.Compute(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, depFacts))
	} else {
		// Standard-library unit (no module): vetted only so the go
		// command has a facts file to forward. The zero-allocation
		// contract stops at the runtime boundary — folding latent
		// violations out of sync or runtime internals would drown every
		// dependent — so std units export empty facts, matching the
		// standalone driver's in-module scope.
		writeVetx(nil)
	}

	if cfg.VetxOnly {
		// Dependency units are vetted only for facts; no diagnostics.
		return
	}

	var diags []analysis.Diagnostic
	for _, a := range as {
		ds, err := lint.RunAnalyzer(pkg, a)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
