// mnnfast-lint runs the repo's custom static analyzers (hotalloc,
// poolescape, atomicfield, guardedby, floatdet — see internal/lint)
// over Go packages. Two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/mnnfast-lint ./...
//	go run ./cmd/mnnfast-lint -checks hotalloc,floatdet ./internal/tensor
//
// As a go vet tool, which scopes each invocation to one compilation
// unit and caches results in the build cache:
//
//	go vet -vettool=$(pwd)/bin/mnnfast-lint ./...
//
// In vet mode the binary speaks cmd/go's vettool protocol: it answers
// -V=full with a stable version line (go uses it as the tool's cache
// ID), then receives a vet.cfg JSON path naming the unit's files and
// the export data of its dependencies. Exit status is 0 when clean,
// 2 with diagnostics on stderr otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mnnfast/internal/lint"
	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/load"
)

// version is the tool identity reported to the go command's -V=full
// handshake; bump it when analyzer behavior changes so stale cached
// vet results are invalidated.
const version = "v0.4.0"

func main() {
	// The go command probes `tool -V=full` before anything else; the
	// reply must be `<basename> version <id>`.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" {
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		}
	}

	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")

	// The go command's second probe is `tool -flags`, expecting a JSON
	// description of the flags the tool accepts.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagDefs()
		return
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0], as)
		return
	}
	standalone(args, as)
}

// printFlagDefs answers the go command's `-flags` probe with the JSON
// shape cmd/go expects (the same one x/tools' unitchecker emits).
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(defs)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return lint.Analyzers(), nil
	}
	var as []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a := lint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		as = append(as, a)
	}
	return as, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mnnfast-lint: %v\n", err)
	os.Exit(1)
}

// standalone loads the given patterns (default ./...) and runs the
// suite over every matched package.
func standalone(patterns []string, as []*analysis.Analyzer) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fatal(err)
	}
	diags, where, err := lint.Run(pkgs, as)
	if err != nil {
		fatal(err)
	}
	for i, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", where[i].Fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mnnfast-lint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	GoVersion string

	SucceedOnTypecheckFailure bool
}

// unitcheck runs in go vet -vettool mode over one compilation unit.
func unitcheck(cfgPath string, as []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}

	// The go command requires the facts file to exist afterwards even
	// though this suite exchanges no facts across units.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("mnnfast-lint "+version+"\n"), 0o666); err != nil {
				fatal(err)
			}
		}
	}

	fset := token.NewFileSet()
	imp := load.Importer(fset, cfg.ImportMap, func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q in vet config %s", path, cfg.ID)
		}
		return file, nil
	})
	// The invariants target production code: go vet also hands us test
	// units, whose _test.go files are free to allocate, format, and
	// poke fields without locks, so they are excluded here (standalone
	// mode never sees them — `go list` GoFiles excludes tests).
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx()
		return
	}
	pkg, err := load.Check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(err)
	}
	pkg.Dir = cfg.Dir

	if cfg.VetxOnly {
		// Dependency units are vetted only for facts; no diagnostics.
		writeVetx()
		return
	}

	var diags []analysis.Diagnostic
	for _, a := range as {
		ds, err := lint.RunAnalyzer(pkg, a)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
