// Command mnnfast-serve exposes a trained memory network over HTTP —
// the interactive QA deployment of the paper's §4.1.1.
//
// Usage:
//
//	mnnfast-train -task single-fact -out model.gob
//	mnnfast-serve -model model.gob -addr :8080
//
//	curl -XPOST localhost:8080/v1/story \
//	     -d '{"sentences":["john went to the kitchen"]}'
//	curl -XPOST localhost:8080/v1/answer -d '{"question":"where is john?"}'
//	curl localhost:8080/v1/metrics          # Prometheus text exposition
//	curl localhost:8080/v1/statz            # JSON snapshot with percentiles
//
// Concurrent answers are micro-batched into one batched inference call
// per flush (the paper's §4.1.2 batching argument): -batch-max sets the
// flush size (0 disables batching), -batch-wait how long a partial
// batch waits for stragglers, and -queue-depth the admission bound —
// beyond it requests are shed with 429 + Retry-After. SIGINT/SIGTERM
// drain in-flight batches before exit.
//
// -parallelism N runs each flush's attention across N persistent
// workers on the work-stealing chunk scheduler (bit-identical results;
// scheduler counters appear under mnnfast_sched_* in /v1/metrics).
//
// -pprof exposes net/http/pprof under /debug/pprof/ and -access-log
// emits one structured line per request. Without -model, a small
// single-fact model is trained at startup.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mnnfast/internal/babi"
	"mnnfast/internal/batcher"
	"mnnfast/internal/memnn"
	"mnnfast/internal/server"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "model file from mnnfast-train (default: train one now)")
		addr        = flag.String("addr", ":8080", "listen address")
		skip        = flag.Float64("skip", 0, "zero-skipping threshold for inference (0 = exact)")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		accessLog   = flag.Bool("access-log", false, "log one structured line per request to stderr")
		batchMax    = flag.Int("batch-max", batcher.DefaultMaxBatch, "micro-batch flush size for /v1/answer (0 = no batching)")
		batchWait   = flag.Duration("batch-wait", batcher.DefaultMaxWait, "how long a partial batch waits for stragglers")
		queueDepth  = flag.Int("queue-depth", 0, "bounded answer queue; beyond it requests get 429 (0 = 4x batch-max)")
		parallelism = flag.Int("parallelism", 0, "worker count for intra-query parallel attention (0 = serial; try runtime.NumCPU())")
		enableTrace = flag.Bool("trace", true, "record request-scoped span traces into an in-memory flight recorder (GET /v1/traces)")
		traceKeep   = flag.Int("trace-keep", 0, "flight-recorder capacity in traces (0 = default 128)")
		traceSample = flag.Int("trace-sample", 0, "keep 1 in N traces that are neither errored nor slow; 1 keeps all (0 = default 16)")
		pprofLabels = flag.Bool("pprof-labels", false, "attach handler/session pprof labels to request goroutines (for CPU profile attribution)")
		earlyExit   = flag.String("early-exit", "", "confidence metric for early hop exit: margin, maxprob, or attnmax (empty = run every hop)")
		exitThresh  = flag.Float64("exit-threshold", 0.9, "confidence at or above which remaining hops are skipped")
		exitMinHops = flag.Int("exit-min-hops", 1, "earliest hop the gate may exit after")
		exitFall    = flag.Float64("exit-fallback", 0, "confidence below which a question commits to the full hop path (0 = keep gating)")
		attention   = flag.String("attention", "exact", "attention mode: exact, or topk (IVF-indexed approximate top-k over each session story)")
		topkK       = flag.Int("topk-k", 32, "topk mode: attention survivors per hop (0 = keep every probed candidate)")
		topkNProbe  = flag.Int("topk-nprobe", 0, "topk mode: inverted lists probed per hop (0 = nlist/16, min 1)")
		topkMinRows = flag.Int("topk-min-rows", 0, "topk mode: stories below this many sentences run exact attention (0 = default 256)")
	)
	flag.Parse()

	model, corpus, err := obtainModel(*modelPath)
	if err != nil {
		log.Fatal("mnnfast-serve: ", err)
	}
	srv, err := server.New(model, corpus)
	if err != nil {
		log.Fatal("mnnfast-serve: ", err)
	}
	srv.SkipThreshold = float32(*skip)
	switch *attention {
	case "exact":
	case "topk":
		model.SetTopK(memnn.TopKConfig{
			Enabled: true,
			K:       *topkK,
			NProbe:  *topkNProbe,
			MinRows: *topkMinRows,
		})
		floor := *topkMinRows
		if floor <= 0 {
			floor = memnn.DefaultTopKMinRows
		}
		log.Printf("topk attention: k %d, nprobe %d (0 = nlist/16), exact below %d rows (probe counters under mnnfast_topk_probed_rows)",
			*topkK, *topkNProbe, floor)
	default:
		log.Fatalf("mnnfast-serve: unknown -attention mode %q (want exact or topk)", *attention)
	}
	if *earlyExit != "" {
		metric, err := memnn.ParseExitMetric(*earlyExit)
		if err != nil {
			log.Fatal("mnnfast-serve: ", err)
		}
		policy := memnn.ExitPolicy{
			Metric:    metric,
			Threshold: float32(*exitThresh),
			MinHops:   *exitMinHops,
			Fallback:  float32(*exitFall),
		}
		if err := policy.Validate(); err != nil {
			log.Fatal("mnnfast-serve: ", err)
		}
		srv.ExitPolicy = policy
		log.Printf("early exit: metric %s, threshold %g, min hops %d (per-hop exits under mnnfast_early_exits_total)",
			metric, *exitThresh, *exitMinHops)
	}
	if *accessLog {
		srv.AccessLog = log.New(os.Stderr, "", log.LstdFlags)
	}
	if *batchMax > 0 {
		srv.EnableBatching(server.BatchOptions{
			MaxBatch:   *batchMax,
			MaxWait:    *batchWait,
			QueueDepth: *queueDepth,
		})
		log.Printf("micro-batching: max batch %d, max wait %v", *batchMax, *batchWait)
	}
	if *parallelism > 0 {
		if err := srv.EnableParallelism(*parallelism); err != nil {
			log.Fatal("mnnfast-serve: ", err)
		}
		log.Printf("parallel attention: %d workers (work-stealing chunk scheduler; results bit-identical to serial)", *parallelism)
	}
	if *enableTrace {
		srv.EnableTracing(server.TraceOptions{
			Capacity:    *traceKeep,
			SampleEvery: *traceSample,
		})
		log.Printf("tracing: flight recorder enabled; span trees at /v1/traces (Perfetto via ?format=chrome)")
	}
	srv.PprofLabels = *pprofLabels

	root := http.NewServeMux()
	root.Handle("/", srv.Handler())
	if *enablePprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof enabled at /debug/pprof/")
	}

	log.Printf("serving on %s (vocab %d, answers %d, hops %d); metrics at /v1/metrics",
		*addr, corpus.Vocab.Size(), len(corpus.Answers), model.Cfg.Hops)

	// Serve until SIGINT/SIGTERM, then drain: stop accepting
	// connections, finish in-flight requests, and flush any queued
	// answer batches before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: root}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal("mnnfast-serve: ", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining connections and queued batches")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mnnfast-serve: shutdown: %v", err)
	}
	srv.Close()
}

func obtainModel(path string) (*memnn.Model, *memnn.Corpus, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return memnn.Load(f)
	}
	fmt.Println("no -model given; training a small single-fact model...")
	opt := babi.GenOptions{Stories: 600, StoryLen: 12, People: 6, Locations: 6}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(7)))
	train, test := d.Split(0.9)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 24, Hops: 2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, nil, err
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 40
	if _, err := model.Train(corpus.Train, topt); err != nil {
		return nil, nil, err
	}
	fmt.Printf("trained: test accuracy %.2f\n", model.Accuracy(corpus.Test, 0))
	return model, corpus, nil
}
