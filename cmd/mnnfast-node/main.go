// Command mnnfast-node runs the paper's multi-node scale-out (§5.3)
// from the shell: shard servers own row ranges of a (synthetically
// generated, seed-reproducible) knowledge database, and a coordinator
// fans questions out and merges the O(ed) partials.
//
// Serve two shards of the same seed-42 database:
//
//	mnnfast-node -serve -listen :7001 -ns 200000 -ed 48 -rows 0:100000      -seed 42 &
//	mnnfast-node -serve -listen :7002 -ns 200000 -ed 48 -rows 100000:200000 -seed 42 &
//
// Query them (the coordinator generates the same questions from
// -qseed, so runs are reproducible):
//
//	mnnfast-node -query localhost:7001,localhost:7002 -ed 48 -questions 10
//
// Every node must be built from the same -ns/-ed/-seed so the shards
// describe one coherent database.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mnnfast/internal/cluster"
	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run a shard node")
		listen    = flag.String("listen", ":7001", "node listen address (with -serve)")
		rows      = flag.String("rows", "", "row range lo:hi this node serves (with -serve; default all)")
		query     = flag.String("query", "", "comma-separated node addresses to query as coordinator")
		ns        = flag.Int("ns", 100000, "database sentences (must match across nodes)")
		ed        = flag.Int("ed", 48, "embedding dimension (must match across nodes)")
		seed      = flag.Int64("seed", 42, "database seed (must match across nodes)")
		qseed     = flag.Int64("qseed", 1, "question seed (with -query)")
		questions = flag.Int("questions", 5, "questions to ask (with -query)")
		chunk     = flag.Int("chunk", 1000, "column-engine chunk size")
	)
	flag.Parse()

	switch {
	case *serve:
		runNode(*listen, *rows, *ns, *ed, *seed, *chunk)
	case *query != "":
		runCoordinator(*query, *ed, *qseed, *questions)
	default:
		fmt.Fprintln(os.Stderr, "mnnfast-node: need -serve or -query (see -h)")
		os.Exit(2)
	}
}

func buildDatabase(ns, ed int, seed int64) *core.Memory {
	rng := rand.New(rand.NewSource(seed))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		log.Fatal("mnnfast-node: ", err)
	}
	return mem
}

func parseRange(s string, ns int) (int, int) {
	if s == "" {
		return 0, ns
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		log.Fatalf("mnnfast-node: -rows %q, want lo:hi", s)
	}
	lo, err1 := strconv.Atoi(parts[0])
	hi, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		log.Fatalf("mnnfast-node: -rows %q, want integers", s)
	}
	return lo, hi
}

func runNode(listen, rows string, ns, ed int, seed int64, chunk int) {
	mem := buildDatabase(ns, ed, seed)
	lo, hi := parseRange(rows, ns)
	node, err := cluster.NewNode(mem, lo, hi, core.Options{ChunkSize: chunk, Streaming: true})
	if err != nil {
		log.Fatal("mnnfast-node: ", err)
	}
	addr, err := node.Listen(listen)
	if err != nil {
		log.Fatal("mnnfast-node: ", err)
	}
	log.Printf("serving rows [%d, %d) of %d×%d database (seed %d) on %s", lo, hi, ns, ed, seed, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	node.Close()
}

func runCoordinator(addrList string, ed int, qseed int64, questions int) {
	var addrs []string
	for _, a := range strings.Split(addrList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	coord, err := cluster.Dial(ed, addrs...)
	if err != nil {
		log.Fatal("mnnfast-node: ", err)
	}
	defer coord.Close()
	log.Printf("connected to %s", coord.Name())

	rng := rand.New(rand.NewSource(qseed))
	o := tensor.NewVector(ed)
	for q := 0; q < questions; q++ {
		u := tensor.RandomVector(rng, ed, 1)
		start := time.Now()
		st, err := coord.TryInfer(u, o)
		if err != nil {
			log.Fatal("mnnfast-node: ", err)
		}
		fmt.Printf("question %d: %v  rows=%d  skipped=%.1f%%  |o|=%.4f\n",
			q, time.Since(start), st.TotalRows, 100*st.SkipFraction(), o.Norm2())
	}
	fmt.Printf("gather payload per question: %d bytes\n", coord.SyncBytesPerQuery())
}
