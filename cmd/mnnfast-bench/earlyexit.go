package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

// ExitEntry is one point of the early-exit threshold sweep: the gate at
// one confidence threshold, scored against the full-hop path on the
// same question set — the hops-level analogue of the zero-skipping
// threshold-vs-accuracy curves (EXPERIMENTS.md Fig 6/7).
type ExitEntry struct {
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold"`
	// Agreement is the fraction of questions answering exactly as the
	// full path; MeanHops is the average hops executed under the gate.
	Agreement  float64 `json:"agreement"`
	MeanHops   float64 `json:"mean_hops"`
	ExitsByHop []int64 `json:"exits_by_hop"`
	// NsPerOp is the gated single-question inference latency (cached
	// embedded story, pooled buffers), integer nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
}

// ExitFile is the BENCH_earlyexit.json document.
type ExitFile struct {
	Label     string `json:"label"`
	Hops      int    `json:"max_hops"`
	Dim       int    `json:"dim"`
	Questions int    `json:"questions"`
	// TestAccuracy is the full-path answer accuracy of the trained
	// model, the quality anchor every agreement number is relative to.
	TestAccuracy float64 `json:"test_accuracy"`
	// NsPerOpFull is the gate-off latency on the same setup; the
	// per-threshold NsPerOp divided by this is the wall-clock saving.
	NsPerOpFull int64       `json:"ns_per_op_full"`
	Entries     []ExitEntry `json:"entries"`
}

// parseThresholds turns the -earlyexit argument into a threshold list:
// "auto" sweeps 0.1..0.9 plus an unfireable 1.5 control, otherwise a
// comma-separated list like "0.25,0.5,0.9".
func parseThresholds(spec string) ([]float32, error) {
	if spec == "auto" {
		return []float32{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.5}, nil
	}
	var ths []float32
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
		if err != nil {
			return nil, fmt.Errorf("bad -earlyexit element %q", f)
		}
		ths = append(ths, float32(v))
	}
	if len(ths) == 0 {
		return nil, fmt.Errorf("empty -earlyexit list")
	}
	return ths, nil
}

// runExitSweep trains a small multi-hop model on generated bAbI (the
// mnnfast-serve default task mix), sweeps the exit threshold, and
// writes agreement / mean-hops / latency per threshold to path.
func runExitSweep(path, label, metricName, spec string, stories, epochs int) error {
	ths, err := parseThresholds(spec)
	if err != nil {
		return err
	}
	metric, err := memnn.ParseExitMetric(metricName)
	if err != nil {
		return err
	}
	if stories <= 0 {
		stories = 600
	}
	if epochs <= 0 {
		epochs = 40
	}

	opt := babi.GenOptions{Stories: stories, StoryLen: 12, People: 6, Locations: 6}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(7)))
	train, test := d.Split(0.9)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 24, Hops: 3,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		return err
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = epochs
	if _, err := model.Train(corpus.Train, topt); err != nil {
		return err
	}

	exs := corpus.Test
	embedded := make([]*memnn.EmbeddedStory, len(exs))
	for i := range exs {
		embedded[i] = new(memnn.EmbeddedStory)
		model.EmbedStoryInto(memnn.Example{Sentences: exs[i].Sentences}, embedded[i])
	}
	bench := func(policy memnn.ExitPolicy) int64 {
		var f memnn.Forward
		model.PredictGated(exs[0], 0, policy, &f, embedded[0], nil) // warm buffers
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := i % len(exs)
				model.PredictGated(exs[q], 0, policy, &f, embedded[q], nil)
			}
		})
		return roundNsPerOp(res)
	}

	file := ExitFile{
		Label:        label,
		Hops:         model.Cfg.Hops,
		Dim:          model.Cfg.Dim,
		Questions:    len(exs),
		TestAccuracy: model.Accuracy(exs, 0),
		NsPerOpFull:  bench(memnn.ExitPolicy{}),
	}
	fmt.Printf("early-exit sweep: metric %s, %d questions, hops %d, full path %d ns/op (test accuracy %.3f)\n",
		metric, file.Questions, file.Hops, file.NsPerOpFull, file.TestAccuracy)

	for _, th := range ths {
		policy := memnn.ExitPolicy{Metric: metric, Threshold: th, MinHops: 1}
		st := model.EvaluateExit(exs, 0, policy)
		e := ExitEntry{
			Metric:     metric.String(),
			Threshold:  float64(th),
			Agreement:  st.Agreement,
			MeanHops:   st.MeanHops,
			ExitsByHop: st.ExitsByHop,
			NsPerOp:    bench(policy),
		}
		file.Entries = append(file.Entries, e)
		fmt.Printf("  threshold %-5g agreement %.4f  mean hops %.3f/%d  %8d ns/op (%.2fx)\n",
			th, e.Agreement, e.MeanHops, file.Hops, e.NsPerOp,
			float64(file.NsPerOpFull)/float64(e.NsPerOp))
	}

	raw, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
