package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"mnnfast/internal/core"
	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
)

// The -attention=topk sweep: exact (column engine) vs approximate
// (IVF top-k engine) single-query attention across database sizes,
// reporting per-nprobe latency, candidate recall against the
// brute-force top-k, and answer agreement against the exact output.
// Methodology lives in EXPERIMENTS.md ("Approximate top-k attention");
// the checked-in BENCH_topk.json is this sweep's output.

// TopKSweepEntry is one (ns, nprobe) point.
type TopKSweepEntry struct {
	NS     int `json:"ns"`
	NList  int `json:"nlist"`
	NProbe int `json:"nprobe"`
	K      int `json:"k"`
	// Latency of one full attention query (inner products + softmax +
	// weighted sum; the topk side also pays its probe).
	ExactNsPerOp int64   `json:"exact_ns_per_op"`
	TopKNsPerOp  int64   `json:"topk_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	// RecallAtK: fraction of the brute-force top-k logit rows the probe's
	// candidate set contains, averaged over the query sample.
	RecallAtK float64 `json:"recall_at_k"`
	// Agreement: fraction of sampled queries whose projected answer
	// (argmax of a fixed random projection of the attention output)
	// matches the exact engine's.
	Agreement     float64 `json:"answer_agreement"`
	AvgProbedRows float64 `json:"avg_probed_rows"`
	IndexBuildMS  int64   `json:"index_build_ms"`
}

// TopKSweepFile is the BENCH_topk.json document.
type TopKSweepFile struct {
	Label    string           `json:"label"`
	ED       int              `json:"ed"`
	Clusters int              `json:"clusters"`
	Queries  int              `json:"queries"`
	Entries  []TopKSweepEntry `json:"entries"`
}

// parseSizeList parses a comma list of sizes, allowing 10^k notation.
func parseSizeList(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if base, exp, ok := strings.Cut(f, "^"); ok {
			b, err1 := strconv.Atoi(base)
			e, err2 := strconv.Atoi(exp)
			if err1 != nil || err2 != nil || b < 1 || e < 0 {
				return nil, fmt.Errorf("bad size %q", f)
			}
			n := 1
			for i := 0; i < e; i++ {
				n *= b
			}
			out = append(out, n)
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// clusteredDB builds a memory whose rows form well-separated clusters —
// the regime where an approximate index earns its keep (a real story's
// sentence embeddings share entities and locations; fully isotropic
// rows would make any sublinear index useless by construction). Queries
// are noisy copies of database rows, so every query has genuine near
// neighbors. Returns the memory plus nq query vectors.
func clusteredDB(rng *rand.Rand, ns, ed, clusters, nq int) (*core.Memory, []tensor.Vector) {
	centers := tensor.GaussianMatrix(rng, clusters, ed, 1)
	in := tensor.NewMatrix(ns, ed)
	out := tensor.NewMatrix(ns, ed)
	for i := 0; i < ns; i++ {
		c := centers.Row(i % clusters)
		ri, ro := in.Row(i), out.Row(i)
		for j := 0; j < ed; j++ {
			ri[j] = c[j] + float32(rng.NormFloat64())*0.15
			ro[j] = float32(rng.NormFloat64())
		}
	}
	mem, err := core.NewMemory(in, out)
	if err != nil {
		panic(err)
	}
	qs := make([]tensor.Vector, nq)
	for q := range qs {
		row := in.Row(rng.Intn(ns))
		v := tensor.NewVector(ed)
		for j := 0; j < ed; j++ {
			v[j] = row[j] + float32(rng.NormFloat64())*0.05
		}
		qs[q] = v
	}
	return mem, qs
}

// bruteTopKRows returns the k rows with the largest logits (ties to the
// lower row), ascending, via a full scan.
func bruteTopKRows(logits tensor.Vector, k int) map[int32]bool {
	idx := make([]int32, len(logits))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		la, lb := logits[idx[a]], logits[idx[b]]
		if la != lb {
			return la > lb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	top := make(map[int32]bool, k)
	for _, r := range idx[:k] {
		top[r] = true
	}
	return top
}

// runTopKSweep measures exact vs topk attention at each database size
// and probe width and writes BENCH_topk.json-shaped output to path.
func runTopKSweep(path, label, sizeSpec, probeSpec string, ed, k, queries int) error {
	sizes, err := parseSizeList(sizeSpec)
	if err != nil {
		return err
	}
	probes, err := parseSizeList(probeSpec)
	if err != nil {
		return err
	}
	if ed <= 0 {
		ed = 64
	}
	if k <= 0 {
		k = 32
	}
	if queries <= 0 {
		queries = 100
	}
	const clusters = 256
	file := TopKSweepFile{Label: label, ED: ed, Clusters: clusters, Queries: queries}
	fmt.Printf("topk sweep: ed=%d k=%d clusters=%d queries=%d sizes=%v nprobe=%v\n",
		ed, k, clusters, queries, sizes, probes)

	answers := tensor.GaussianMatrix(rand.New(rand.NewSource(11)), 32, ed, 1)
	ansOf := func(o tensor.Vector, scratch tensor.Vector) int {
		tensor.MatVec(nil, answers, o, scratch)
		return scratch.ArgMax()
	}

	for _, ns := range sizes {
		rng := rand.New(rand.NewSource(13))
		mem, qs := clusteredDB(rng, ns, ed, clusters, queries)
		chunk := 1000
		if ns < chunk {
			chunk = ns
		}
		exact := core.NewColumn(mem, core.Options{ChunkSize: chunk})
		o := tensor.NewVector(ed)

		// Exact baseline: latency, per-query outputs, answers, and the
		// brute-force top-k row sets for recall scoring.
		exactRes := testing.Benchmark(func(b *testing.B) {
			exact.Infer(qs[0], o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exact.Infer(qs[i%len(qs)], o)
			}
		})
		exactNs := roundNsPerOp(exactRes)

		exactAns := make([]int, len(qs))
		bruteTop := make([]map[int32]bool, len(qs))
		logits := tensor.NewVector(ns)
		ansScratch := tensor.NewVector(answers.Rows)
		for q, u := range qs {
			exact.Infer(u, o)
			exactAns[q] = ansOf(o, ansScratch)
			tensor.MatVec(nil, mem.In, u, logits)
			bruteTop[q] = bruteTopKRows(logits, k)
		}

		t0 := time.Now()
		ix := sparse.BuildTopKIndex(mem.In, sparse.IndexOptions{})
		buildMS := time.Since(t0).Milliseconds()

		for _, nprobe := range probes {
			if nprobe > ix.NList() {
				continue
			}
			eng := core.NewTopKWithIndex(mem, core.Options{ChunkSize: chunk}, ix, nprobe)
			res := testing.Benchmark(func(b *testing.B) {
				eng.Infer(qs[0], o)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Infer(qs[i%len(qs)], o)
				}
			})

			var agree int
			var recall, probed float64
			ps := sparse.GetProbeScratch()
			for q, u := range qs {
				cand, _ := ix.Candidates(u, nprobe, ps)
				probed += float64(len(cand))
				hit := 0
				for _, r := range cand {
					if bruteTop[q][r] {
						hit++
					}
				}
				recall += float64(hit) / float64(len(bruteTop[q]))
				eng.Infer(u, o)
				if ansOf(o, ansScratch) == exactAns[q] {
					agree++
				}
			}
			sparse.PutProbeScratch(ps)

			e := TopKSweepEntry{
				NS: ns, NList: ix.NList(), NProbe: nprobe, K: k,
				ExactNsPerOp:  exactNs,
				TopKNsPerOp:   roundNsPerOp(res),
				RecallAtK:     recall / float64(len(qs)),
				Agreement:     float64(agree) / float64(len(qs)),
				AvgProbedRows: probed / float64(len(qs)),
				IndexBuildMS:  buildMS,
			}
			e.Speedup = float64(e.ExactNsPerOp) / float64(e.TopKNsPerOp)
			file.Entries = append(file.Entries, e)
			fmt.Printf("  ns=%-8d nlist=%-5d nprobe=%-4d exact %11d ns/op  topk %10d ns/op  %6.2fx  recall@%d %.3f  agree %.3f  probed %.0f\n",
				ns, e.NList, nprobe, e.ExactNsPerOp, e.TopKNsPerOp, e.Speedup, k, e.RecallAtK, e.Agreement, e.AvgProbedRows)
		}
	}

	raw, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
