package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mnnfast/internal/core"
	"mnnfast/internal/sched"
	"mnnfast/internal/tensor"
)

// ParallelEntry is one point of the scaling curve: the column engine at
// a fixed memory shape, measured at one worker count, with the
// scheduler's counters over the measurement window.
type ParallelEntry struct {
	Workers int `json:"workers"`
	// NsPerOp is integer nanoseconds, rounded like BenchEntry's.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SpeedupVs1 is ns/op at one worker divided by ns/op here — the
	// intra-query scaling the scheduler exists to deliver.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	Runs       int64   `json:"sched_runs"`
	SerialRuns int64   `json:"sched_serial_runs"`
	Chunks     int64   `json:"sched_chunks"`
	Steals     int64   `json:"sched_steals"`
	IdleNS     int64   `json:"sched_idle_ns"`
}

// ParallelFile is the BENCH_parallel.json document. HostCPUs and
// GoMaxProcs record the hardware the curve was measured on: a scaling
// curve from a 1-CPU host is a correctness record (the schedule runs,
// counters move, results match), not a performance claim.
type ParallelFile struct {
	Label      string          `json:"label"`
	HostCPUs   int             `json:"host_cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NS         int             `json:"ns"`
	ED         int             `json:"ed"`
	Chunk      int             `json:"chunk"`
	Entries    []ParallelEntry `json:"entries"`
}

// parseProcs turns the -procs argument into a worker-count list:
// "auto" doubles 1→NumCPU (always ending at NumCPU), otherwise a
// comma-separated list like "1,2,4,8".
func parseProcs(spec string) ([]int, error) {
	if spec == "auto" {
		var ws []int
		for w := 1; w < runtime.NumCPU(); w *= 2 {
			ws = append(ws, w)
		}
		return append(ws, runtime.NumCPU()), nil
	}
	var ws []int
	for _, f := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -procs element %q", f)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("empty -procs list")
	}
	return ws, nil
}

// runParallelSweep measures the column engine's single-query latency at
// each worker count and writes the scaling curve to path. The first
// measured count is the speedup denominator, so lists should start
// at 1.
func runParallelSweep(path, label, spec string, ns, ed, chunk int) error {
	workers, err := parseProcs(spec)
	if err != nil {
		return err
	}
	if ns <= 0 {
		ns = 10000
	}
	if ed <= 0 {
		ed = 128
	}
	if chunk <= 0 {
		chunk = 1000
	}
	rng := rand.New(rand.NewSource(7))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		return err
	}
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)

	file := ParallelFile{
		Label:      label,
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NS:         ns,
		ED:         ed,
		Chunk:      chunk,
	}
	fmt.Printf("parallel sweep: column engine ns=%d ed=%d chunk=%d on %d CPUs (GOMAXPROCS=%d)\n",
		ns, ed, chunk, file.HostCPUs, file.GoMaxProcs)

	var base float64
	for _, w := range workers {
		var pool *tensor.Pool
		if w > 1 {
			pool = tensor.NewPool(w)
		}
		eng := core.NewColumn(mem, core.Options{ChunkSize: chunk, Pool: pool})
		pre := eng.Scheduler().Snapshot()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			eng.Infer(u, o) // warm scratch pools outside the timed loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Infer(u, o)
			}
		})
		post := eng.Scheduler().Snapshot()
		d := diffSched(pre, post)

		e := ParallelEntry{
			Workers:     w,
			NsPerOp:     roundNsPerOp(res),
			AllocsPerOp: res.AllocsPerOp(),
			Runs:        d.Runs,
			SerialRuns:  d.SerialRuns,
			Chunks:      d.TotalChunks(),
			Steals:      d.TotalSteals(),
			IdleNS:      d.TotalIdleNS(),
		}
		if base == 0 {
			base = float64(e.NsPerOp)
		}
		e.SpeedupVs1 = base / float64(e.NsPerOp)
		file.Entries = append(file.Entries, e)
		fmt.Printf("  workers=%-3d %12d ns/op  %4d allocs/op  speedup %.2fx  chunks %d steals %d\n",
			w, e.NsPerOp, e.AllocsPerOp, e.SpeedupVs1, e.Chunks, e.Steals)
		if pool != nil {
			pool.Close()
		}
	}

	raw, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// diffSched subtracts two scheduler snapshots taken around the
// measurement window.
func diffSched(pre, post sched.Stats) sched.Stats {
	d := post
	d.Runs -= pre.Runs
	d.SerialRuns -= pre.SerialRuns
	d.PerWorker = append([]sched.WorkerStats(nil), post.PerWorker...)
	for i := range d.PerWorker {
		if i < len(pre.PerWorker) {
			d.PerWorker[i].Chunks -= pre.PerWorker[i].Chunks
			d.PerWorker[i].Steals -= pre.PerWorker[i].Steals
			d.PerWorker[i].IdleNS -= pre.PerWorker[i].IdleNS
		}
	}
	return d
}
