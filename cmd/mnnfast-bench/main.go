// Command mnnfast-bench reproduces the MnnFast paper's evaluation:
// every table and figure of §5 as a printable table.
//
// Usage:
//
//	mnnfast-bench -list
//	mnnfast-bench -run fig9,fig11          # specific experiments
//	mnnfast-bench -run all -quick          # smoke-sized pass
//	mnnfast-bench -run fig3 -ns 1048576    # override the database size
//
// Default sizing follows the paper's Table 1 with the database scaled
// from 100M to 256K sentences (see DESIGN.md for the substitution map).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mnnfast/internal/experiments"
	"mnnfast/internal/tensor"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verify  = flag.Bool("verify", false, "run the claim-shape self-checks and exit non-zero on failure")
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		quickM  = flag.Bool("quick", false, "use the seconds-fast smoke configuration")
		seed    = flag.Int64("seed", 0, "override RNG seed (0 keeps the config default)")
		ns      = flag.Int("ns", 0, "override database size in sentences")
		ed      = flag.Int("ed", 0, "override embedding dimension")
		chunk   = flag.Int("chunk", 0, "override column-engine chunk size")
		stories = flag.Int("stories", 0, "override training-set size (fig6/fig7)")
		epochs  = flag.Int("epochs", 0, "override training epochs (fig6/fig7)")
		format  = flag.String("format", "text", "output format: text, md, csv")
		bjson   = flag.String("benchjson", "", "append single-query engine benchmarks to this JSON file and exit")
		label   = flag.String("label", "dev", "label for -benchjson entries (e.g. pre-pr, post-pr)")
		procs   = flag.String("procs", "", "sweep intra-query worker counts (comma list like 1,2,4,8, or 'auto' = 1..NumCPU) and exit")
		procOut = flag.String("procs-out", "BENCH_parallel.json", "output file for the -procs scaling curve")
		exit    = flag.String("earlyexit", "", "sweep early-exit thresholds (comma list like 0.25,0.5,0.9, or 'auto') and exit")
		exitOut = flag.String("earlyexit-out", "BENCH_earlyexit.json", "output file for the -earlyexit sweep")
		exitMet = flag.String("earlyexit-metric", "margin", "confidence metric for -earlyexit: margin, maxprob, or attnmax")
		tier    = flag.String("kernel-tier", "auto", "kernel tier override: auto, scalar, go, or avx2 (if available)")
		attn    = flag.String("attention", "", "run the exact-vs-topk attention sweep over these database sizes (comma list, 10^k allowed, e.g. 10^4,10^5,10^6) and exit")
		attnOut = flag.String("attention-out", "BENCH_topk.json", "output file for the -attention sweep")
		attnNP  = flag.String("topk-nprobe", "1,2,4,8,12,16,32", "probe widths swept by -attention (comma list)")
		attnK   = flag.Int("topk-k", 32, "k for the -attention sweep's recall@k")
		attnQ   = flag.Int("topk-queries", 100, "query sample size per -attention point")
	)
	flag.Parse()

	if err := tensor.SetKernelTier(*tier); err != nil {
		fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
		os.Exit(2)
	}

	if *attn != "" {
		if err := runTopKSweep(*attnOut, *label, *attn, *attnNP, *ed, *attnK, *attnQ); err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exit != "" {
		if err := runExitSweep(*exitOut, *label, *exitMet, *exit, *stories, *epochs); err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *procs != "" {
		if err := runParallelSweep(*procOut, *label, *procs, *ns, *ed, *chunk); err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bjson != "" {
		if err := runBenchJSON(*bjson, *label, *ns, *ed, *chunk); err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quickM {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ns > 0 {
		cfg.NS = *ns
	}
	if *ed > 0 {
		cfg.ED = *ed
	}
	if *chunk > 0 {
		cfg.Chunk = *chunk
	}
	if *stories > 0 {
		cfg.TrainStories = *stories
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	if *verify {
		failed := 0
		for _, c := range experiments.VerifyAll(cfg) {
			status := "PASS"
			if !c.OK {
				status = "FAIL"
				failed++
			}
			fmt.Printf("%s  %-50s %s\n", status, c.Name, c.Detail)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %d claim-shape check(s) failed\n", failed)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "mnnfast-bench: no experiments selected")
		os.Exit(2)
	}
	for _, id := range ids {
		t, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := t.Render(os.Stdout, experiments.Format(*format)); err != nil {
			fmt.Fprintf(os.Stderr, "mnnfast-bench: %v\n", err)
			os.Exit(2)
		}
	}
}
