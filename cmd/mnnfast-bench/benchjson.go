package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"mnnfast/internal/core"
	"mnnfast/internal/obs"
	"mnnfast/internal/tensor"
)

// BenchEntry is one engine measurement in the machine-readable
// benchmark file (BENCH_column.json): single-query inference latency
// and allocation counts at a fixed memory shape, plus the stage-timing
// snapshot — a latency histogram with percentiles and the per-stage
// work counters (inner-product / exp / division / weighted-sum ops,
// zero-skip ratio) that mirror the paper's per-operation breakdown.
// Entries accumulate across runs so labelled before/after comparisons
// live side by side.
type BenchEntry struct {
	Label  string `json:"label"`
	Engine string `json:"engine"`
	NS     int    `json:"ns"`
	ED     int    `json:"ed"`
	// DispatchTier records the kernel tier the entry was measured with
	// (tensor.KernelTier(): scalar, go, or avx2) so per-tier speedup
	// curves can live side by side in one file. Absent on entries
	// predating kernel dispatch.
	DispatchTier string `json:"dispatch_tier,omitempty"`
	// NsPerOp is integer nanoseconds (rounded): sub-nanosecond digits
	// from testing.Benchmark's division are measurement noise, and a
	// uniform integer schema keeps entries comparable across runs.
	NsPerOp      int64                 `json:"ns_per_op"`
	BytesPerOp   int64                 `json:"bytes_per_op"`
	AllocsPerOp  int64                 `json:"allocs_per_op"`
	Latency      obs.HistogramSnapshot `json:"latency"`
	Work         core.Stats            `json:"work"`
	SkipFraction float64               `json:"skip_fraction"`
	Pool         tensor.PoolStats      `json:"pool"`
}

// roundNsPerOp converts a testing.BenchmarkResult to integer
// nanoseconds per operation.
func roundNsPerOp(res testing.BenchmarkResult) int64 {
	return int64(math.Round(float64(res.T.Nanoseconds()) / float64(res.N)))
}

// BenchFile is the top-level JSON document.
type BenchFile struct {
	Entries []BenchEntry `json:"entries"`
}

// runBenchJSON measures the single-query latency of the baseline,
// column, and full-mnnfast engines at ns×ed via testing.Benchmark and
// appends the results to the JSON file at path (creating it if absent).
func runBenchJSON(path, label string, ns, ed, chunk int) error {
	if ns <= 0 {
		ns = 10000
	}
	if ed <= 0 {
		ed = 128
	}
	if chunk <= 0 {
		chunk = 1000
	}
	rng := rand.New(rand.NewSource(7))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		return err
	}
	engines := []core.Engine{
		core.NewBaseline(mem, core.Options{}),
		core.NewColumn(mem, core.Options{ChunkSize: chunk}),
		core.NewColumn(mem, core.Options{ChunkSize: chunk, Streaming: true, SkipThreshold: 0.1}),
	}

	var file BenchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("existing %s is not a benchmark file: %w", path, err)
		}
	}

	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)
	for _, eng := range engines {
		eng := eng
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			eng.Infer(u, o) // warm scratch pools outside the timed loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Infer(u, o)
			}
		})

		// Stage-timing snapshot: a second, histogram-observed pass that
		// also accumulates the engine's per-operation work counters.
		hist := obs.NewRegistry().Histogram("bench_infer_seconds", "")
		var work core.Stats
		const obsIters = 200
		for i := 0; i < obsIters; i++ {
			t0 := time.Now()
			st := eng.Infer(u, o)
			hist.Observe(time.Since(t0))
			work.Add(st)
		}

		entry := BenchEntry{
			Label:        label,
			Engine:       eng.Name(),
			NS:           ns,
			ED:           ed,
			DispatchTier: tensor.KernelTier(),
			NsPerOp:      roundNsPerOp(res),
			BytesPerOp:   res.AllocedBytesPerOp(),
			AllocsPerOp:  res.AllocsPerOp(),
			Latency:      hist.Snapshot(),
			Work:         work,
			SkipFraction: work.SkipFraction(),
			Pool:         tensor.ReadPoolStats(),
		}
		file.Entries = append(file.Entries, entry)
		fmt.Printf("%-12s %-10s ns=%d ed=%d tier=%s  %12d ns/op  %6d B/op  %4d allocs/op  p50 %s p99 %s  skip %.1f%%\n",
			label, entry.Engine, ns, ed, entry.DispatchTier, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp,
			time.Duration(entry.Latency.P50NS), time.Duration(entry.Latency.P99NS),
			entry.SkipFraction*100)
	}

	// Kernel microbenchmarks: the raw Dot and ExpInto inner loops at the
	// embedding dimension, measured through the active dispatch tier.
	// These are the per-tier speedup curve the engine numbers above rest
	// on; comparing entries across -kernel-tier runs isolates the SIMD
	// win from engine-level effects.
	kx := tensor.RandomVector(rng, ed, 1)
	ky := tensor.RandomVector(rng, ed, 1)
	kdst := tensor.NewVector(ed)
	var sink float32
	kernels := []struct {
		name string
		body func()
	}{
		{"kernel/dot", func() { sink += tensor.Dot(kx, ky) }},
		{"kernel/expinto", func() { sink += tensor.ExpInto(kdst, kx, 0.25) }},
	}
	for _, k := range kernels {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.body()
			}
		})
		entry := BenchEntry{
			Label:        label,
			Engine:       k.name,
			NS:           ns,
			ED:           ed,
			DispatchTier: tensor.KernelTier(),
			NsPerOp:      roundNsPerOp(res),
			BytesPerOp:   res.AllocedBytesPerOp(),
			AllocsPerOp:  res.AllocsPerOp(),
		}
		file.Entries = append(file.Entries, entry)
		fmt.Printf("%-12s %-14s ns=%d ed=%d tier=%s  %12d ns/op  %6d B/op  %4d allocs/op\n",
			label, entry.Engine, ns, ed, entry.DispatchTier, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
	}
	_ = sink

	raw, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
