// Command mnnfast-qa is an interactive question-answering demo: it
// loads (or trains) a memory network, then reads story sentences and
// questions from stdin. Lines ending in '?' are questions; other lines
// are appended to the story memory; "reset" clears the story, "quit"
// exits.
//
// Usage:
//
//	mnnfast-qa                       # train a small model, then chat
//	mnnfast-qa -model model.gob      # use a model saved by mnnfast-train
//
// Example session:
//
//	> john went to the kitchen
//	> mary went to the garden
//	> where is mary?
//	garden
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
	"mnnfast/internal/vocab"
)

func main() {
	var (
		modelPath = flag.String("model", "", "load a model saved by mnnfast-train (default: train one now)")
		threshold = flag.Float64("skip", 0, "zero-skipping threshold (0 = exact inference)")
	)
	flag.Parse()

	model, corpus, err := obtainModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnnfast-qa:", err)
		os.Exit(1)
	}
	fmt.Printf("ready: vocab %d words, answers %v\n", corpus.Vocab.Size(), corpus.Answers)
	fmt.Println("type story sentences; end questions with '?'; 'reset' clears; 'quit' exits")

	var story babi.Story
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "quit" || line == "exit":
			return
		case line == "reset":
			story = babi.Story{}
			fmt.Println("story cleared")
			continue
		}
		if strings.HasSuffix(line, "?") {
			if len(story.Sentences) == 0 {
				fmt.Println("tell me a story first")
				continue
			}
			q := story
			q.Question = vocab.Tokenize(line)
			ex, err := corpus.VectorizeStory(q)
			if err != nil {
				fmt.Println("sorry:", err)
				continue
			}
			ans := model.PredictSkip(ex, float32(*threshold))
			fmt.Println(corpus.AnswerWord(ans))
			continue
		}
		words := vocab.Tokenize(line)
		if _, err := corpus.Vocab.EncodeStrict(words); err != nil {
			fmt.Println("sorry:", err)
			continue
		}
		story.Sentences = append(story.Sentences, words)
	}
}

func obtainModel(path string) (*memnn.Model, *memnn.Corpus, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return memnn.Load(f)
	}
	fmt.Println("no -model given; training a small single-fact model (a few seconds)...")
	opt := babi.GenOptions{Stories: 600, StoryLen: 12, People: 6, Locations: 6}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(7)))
	train, test := d.Split(0.9)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 24, Hops: 2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, nil, err
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 40
	if _, err := model.Train(corpus.Train, topt); err != nil {
		return nil, nil, err
	}
	fmt.Printf("trained: test accuracy %.2f\n", model.Accuracy(corpus.Test, 0))
	return model, corpus, nil
}
