// Command mnnfast-loadgen drives a running mnnfast-serve instance with
// concurrent QA sessions and reports throughput and latency
// percentiles.
//
// Usage:
//
//	mnnfast-serve &                                  # default model
//	mnnfast-loadgen -url http://localhost:8080 -sessions 16 -questions 50
package main

import (
	"flag"
	"fmt"
	"os"

	"mnnfast/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "service base URL")
		sessions    = flag.Int("sessions", 8, "concurrent sessions")
		questions   = flag.Int("questions", 20, "questions per session")
		storyLen    = flag.Int("storylen", 8, "story sentences per session")
		seed        = flag.Int64("seed", 1, "workload seed")
		serverStats = flag.Bool("server-stats", true, "scrape /v1/metrics before/after and print the server-side stage breakdown (plus batching stats when the server micro-batches)")
		slowest     = flag.Int("slowest", 0, "fetch and print the span trees of the K slowest answers from /v1/traces (0 = off; needs mnnfast-serve -trace)")
	)
	flag.Parse()

	res, err := loadgen.Run(loadgen.Config{
		BaseURL:       *url,
		Sessions:      *sessions,
		Questions:     *questions,
		StoryLen:      *storyLen,
		Seed:          *seed,
		ServerMetrics: *serverStats,
		Slowest:       *slowest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnnfast-loadgen:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	if report := res.ServerReport(); report != "" {
		fmt.Println(report)
	} else if *serverStats {
		fmt.Println("(no server-side metrics: /v1/metrics unavailable)")
	}
	if *slowest > 0 {
		if report := res.SlowestReport(); report != "" {
			fmt.Print(report)
		} else {
			fmt.Println("(no slow traces: server tracing disabled or no answers succeeded)")
		}
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
