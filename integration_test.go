package mnnfast_test

import (
	"math/rand"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/core"
	"mnnfast/internal/memnn"
	"mnnfast/internal/tensor"
)

// TestEnginesReproduceModelHops wires the two halves of the repository
// together: the embedded memories of a trained memory network's forward
// pass are handed to the MnnFast inference engines, which must
// reproduce the model's own hop outputs exactly. This is the paper's
// deployment story — the model defines the math, the engines execute
// it fast.
func TestEnginesReproduceModelHops(t *testing.T) {
	opt := babi.GenOptions{Stories: 60, StoryLen: 12, People: 4, Locations: 4}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(77)))
	train, test := d.Split(0.8)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 16, Hops: 3,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 5
	if _, err := model.Train(corpus.Train, topt); err != nil {
		t.Fatal(err)
	}

	for _, ex := range corpus.Test[:5] {
		f := model.Apply(ex, 0)
		for k := 0; k < model.Cfg.Hops; k++ {
			mem, err := core.NewMemory(f.MemIn[k], f.MemOut[k])
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []core.Engine{
				core.NewBaseline(mem, core.Options{}),
				core.NewColumn(mem, core.Options{ChunkSize: 4}),
				core.NewColumn(mem, core.Options{ChunkSize: 3, Streaming: true}),
			} {
				o := tensor.NewVector(model.Cfg.Dim)
				eng.Infer(f.U[k], o)
				if d := tensor.MaxAbsDiff(o, f.O[k]); d > 1e-4 {
					t.Errorf("hop %d, %s: engine output differs from model forward by %v",
						k, eng.Name(), d)
				}
			}
		}
	}
}

// TestSkipAgreementModelVsEngine checks that the engine-side
// zero-skipping (threshold on the chunk's max-shifted exponential mass,
// the FPGA rule) and the model-side skipping (threshold on softmax
// probabilities, the CPU rule) bypass comparable work on the same
// trained attention. The engine's cut is chunk-local — each chunk is an
// independent work item so parallel execution is bit-identical to
// sequential — which makes the rule exact when one chunk covers the
// story and conservative when the story is split across chunks.
func TestSkipAgreementModelVsEngine(t *testing.T) {
	opt := babi.GenOptions{Stories: 200, StoryLen: 15, People: 4, Locations: 4}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(78)))
	train, test := d.Split(0.8)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 20, Hops: 2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 25
	if _, err := model.Train(corpus.Train, topt); err != nil {
		t.Fatal(err)
	}

	const th = 0.1
	// ChunkSize 64 covers every story in one chunk, where the chunk-local
	// cut equals the exact post-softmax rule; ChunkSize 8 splits stories,
	// where the cut is conservative (a chunk's mass understates the final
	// normalizer, so borderline rows are kept rather than skipped).
	for _, tc := range []struct {
		chunk    int
		minFrac  float64 // floor on the engine's skip share of the exact rule's
		wantNear bool    // single-chunk: engine ≈ exact
	}{
		{chunk: 64, minFrac: 0.9, wantNear: true},
		{chunk: 8, minFrac: 0.15},
	} {
		var modelSkipped, engineSkipped, total int64
		for _, ex := range corpus.Test {
			f := model.Apply(ex, 0)
			k := 0
			for _, p := range f.P[k] {
				total++
				if p < th {
					modelSkipped++
				}
			}
			mem, err := core.NewMemory(f.MemIn[k], f.MemOut[k])
			if err != nil {
				t.Fatal(err)
			}
			eng := core.NewColumn(mem, core.Options{ChunkSize: tc.chunk, SkipThreshold: th})
			o := tensor.NewVector(model.Cfg.Dim)
			st := eng.Infer(f.U[k], o)
			engineSkipped += st.SkippedRows
		}
		mFrac := float64(modelSkipped) / float64(total)
		eFrac := float64(engineSkipped) / float64(total)
		if mFrac < 0.5 {
			t.Fatalf("trained attention not sparse enough for the comparison: %v", mFrac)
		}
		// Soundness: the engine must never skip a row the exact p<th rule
		// keeps, at any chunk size.
		if eFrac > mFrac+1e-9 {
			t.Errorf("chunk %d: engine rule skipped more than the exact rule: %v > %v", tc.chunk, eFrac, mFrac)
		}
		if eFrac < tc.minFrac*mFrac {
			t.Errorf("chunk %d: engine rule too conservative: %v (exact rule: %v, want ≥ %v of it)",
				tc.chunk, eFrac, mFrac, tc.minFrac)
		}
		if tc.wantNear && mFrac-eFrac > 0.02 {
			t.Errorf("chunk %d: single-chunk rule should match the exact rule: %v vs %v", tc.chunk, eFrac, mFrac)
		}
	}
}

// TestSkipRuleConvergesAtScale verifies the engine's running-normalizer
// skip rule approaches the exact post-softmax rule as ns grows — the
// paper's operating regime (ns up to 100M).
func TestSkipRuleConvergesAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	const ns, ed, th = 20000, 24, 0.1
	in := tensor.GaussianMatrix(rng, ns, ed, 0.5)
	for i := range in.Data {
		in.Data[i] *= 4 // trained-model sharpness
	}
	mem, err := core.NewMemory(in, tensor.GaussianMatrix(rng, ns, ed, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	u := tensor.RandomVector(rng, ed, 1)

	// Exact rule: full softmax, count p >= th survivors.
	p := tensor.NewVector(ns)
	tensor.MatVec(nil, mem.In, u, p)
	tensor.Softmax(p)
	var exactSkipped int64
	for _, pi := range p {
		if pi < th {
			exactSkipped++
		}
	}

	eng := core.NewColumn(mem, core.Options{ChunkSize: 1000, SkipThreshold: th})
	o := tensor.NewVector(ed)
	st := eng.Infer(u, o)

	exactFrac := float64(exactSkipped) / float64(ns)
	engineFrac := st.SkipFraction()
	if engineFrac > exactFrac+1e-9 {
		t.Errorf("engine rule over-skipped: %v > exact %v", engineFrac, exactFrac)
	}
	if exactFrac-engineFrac > 0.02 {
		t.Errorf("engine rule did not converge at ns=%d: %v vs exact %v", ns, engineFrac, exactFrac)
	}
}
