package mnnfast_test

import (
	"math/rand"
	"strings"
	"testing"

	"mnnfast"
	"mnnfast/internal/embed"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart describes it.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const ns, ed = 4096, 32
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	u := tensor.RandomVector(rng, ed, 1)

	base := mnnfast.NewBaseline(mem, mnnfast.Options{})
	fast := mnnfast.NewColumn(mem, mnnfast.Options{
		ChunkSize: 256, Streaming: true, Pool: mnnfast.NewPool(2),
	})
	oBase := tensor.NewVector(ed)
	oFast := tensor.NewVector(ed)
	stBase := base.Infer(u, oBase)
	stFast := fast.Infer(u, oFast)

	if d := tensor.MaxAbsDiff(oBase, oFast); d > 1e-4 {
		t.Errorf("facade engines disagree by %v", d)
	}
	if stBase.Divisions != int64(ns) || stFast.Divisions != int64(ed) {
		t.Errorf("division counts %d / %d, want ns=%d / ed=%d",
			stBase.Divisions, stFast.Divisions, ns, ed)
	}

	sharded, err := mnnfast.NewSharded(mem, 3, mnnfast.Options{ChunkSize: 256}, true)
	if err != nil {
		t.Fatal(err)
	}
	oShard := tensor.NewVector(ed)
	sharded.Infer(u, oShard)
	if d := tensor.MaxAbsDiff(oBase, oShard); d > 1e-4 {
		t.Errorf("sharded facade engine disagrees by %v", d)
	}
}

func TestFacadeExperimentRunner(t *testing.T) {
	ids := mnnfast.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiment ids")
	}
	var sb strings.Builder
	if err := mnnfast.RunExperiment(&sb, "table1", mnnfast.QuickExperimentConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "table1") {
		t.Errorf("runner output missing table header:\n%s", sb.String())
	}
	if err := mnnfast.RunExperiment(&sb, "not-an-id", mnnfast.QuickExperimentConfig()); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestFacadeConfigs(t *testing.T) {
	def := mnnfast.DefaultExperimentConfig()
	quick := mnnfast.QuickExperimentConfig()
	if def.NS <= quick.NS {
		t.Errorf("default NS %d should exceed quick NS %d", def.NS, quick.NS)
	}
}

func TestFacadeNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := vocab.New()
	v.AddAll(vocab.Tokenize("where is john mary kitchen garden went to the"))
	const ed = 16
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, 256, ed, 0.5),
		tensor.GaussianMatrix(rng, 256, ed, 0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	n, err := mnnfast.NewNetwork(mnnfast.NetworkConfig{
		Vocab:   v,
		Table:   embed.NewRandomTable(rng, v.Size(), ed),
		Mem:     mem,
		Engine:  mnnfast.NewColumn(mem, mnnfast.Options{ChunkSize: 64}),
		Hops:    2,
		W:       tensor.GaussianMatrix(rng, 4, ed, 0.1),
		Answers: []string{"kitchen", "garden", "yes", "no"},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, label, st, err := n.Answer("where is john?")
	if err != nil {
		t.Fatal(err)
	}
	if label != n.Answers[idx] {
		t.Errorf("label %q at index %d", label, idx)
	}
	if st.Inferences != 2 {
		t.Errorf("%d inferences for 2 hops", st.Inferences)
	}
}
