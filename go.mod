module mnnfast

go 1.22
