// Benchmarks reproducing the MnnFast paper's evaluation artifacts.
//
// There is one benchmark per table/figure (BenchmarkFig3 … BenchmarkFig14,
// BenchmarkTable1, BenchmarkEnergy) — each runs the corresponding
// experiment from internal/experiments and reports its headline number
// as a custom metric — plus real wall-clock engine benchmarks
// (BenchmarkInfer*) and ablation benchmarks for the design choices
// DESIGN.md calls out (chunk size, sharding, sparse compaction).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mnnfast_test

import (
	"math/rand"
	"testing"

	"mnnfast"
	"mnnfast/internal/core"
	"mnnfast/internal/experiments"
	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// benchDB caches one database across engine benchmarks.
var benchDB *core.Memory

func benchMemory(b *testing.B, ns, ed int) *core.Memory {
	b.Helper()
	if benchDB == nil || benchDB.NS() != ns || benchDB.Dim() != ed {
		rng := rand.New(rand.NewSource(1))
		in := tensor.GaussianMatrix(rng, ns, ed, 0.5)
		out := tensor.GaussianMatrix(rng, ns, ed, 0.5)
		for i := range in.Data {
			in.Data[i] *= 4 // trained-model attention sharpness
		}
		mem, err := core.NewMemory(in, out)
		if err != nil {
			b.Fatal(err)
		}
		benchDB = mem
	}
	return benchDB
}

func benchEngine(b *testing.B, mk func(*core.Memory) core.Engine) {
	b.Helper()
	const ns, ed = 1 << 16, 48
	mem := benchMemory(b, ns, ed)
	eng := mk(mem)
	rng := rand.New(rand.NewSource(2))
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)
	eng.Infer(u, o) // warm-up
	b.SetBytes(mem.In.SizeBytes() + mem.Out.SizeBytes())
	b.ResetTimer()
	var st core.Stats
	for i := 0; i < b.N; i++ {
		st = eng.Infer(u, o)
	}
	b.ReportMetric(st.SkipFraction()*100, "%rows-skipped")
}

func BenchmarkInferBaseline(b *testing.B) {
	benchEngine(b, func(m *core.Memory) core.Engine {
		return core.NewBaseline(m, core.Options{})
	})
}

func BenchmarkInferColumn(b *testing.B) {
	benchEngine(b, func(m *core.Memory) core.Engine {
		return core.NewColumn(m, core.Options{ChunkSize: 1000})
	})
}

func BenchmarkInferColumnStream(b *testing.B) {
	benchEngine(b, func(m *core.Memory) core.Engine {
		return core.NewColumn(m, core.Options{ChunkSize: 1000, Streaming: true})
	})
}

func BenchmarkInferMnnFast(b *testing.B) {
	benchEngine(b, func(m *core.Memory) core.Engine {
		return core.NewColumn(m, core.Options{ChunkSize: 1000, Streaming: true, SkipThreshold: 0.1})
	})
}

func BenchmarkInferSharded(b *testing.B) {
	benchEngine(b, func(m *core.Memory) core.Engine {
		s, err := core.NewSharded(m, 4, core.Options{ChunkSize: 1000}, true)
		if err != nil {
			b.Fatal(err)
		}
		return s
	})
}

// Ablation: column-engine chunk size (DESIGN.md design-choice bench).
// Too-small chunks pay loop overhead; too-large chunks overflow the
// cache-resident scratch.
func BenchmarkChunkSize(b *testing.B) {
	for _, chunk := range []int{64, 256, 1000, 4096, 16384} {
		b.Run(itoa(chunk), func(b *testing.B) {
			benchEngine(b, func(m *core.Memory) core.Engine {
				return core.NewColumn(m, core.Options{ChunkSize: chunk})
			})
		})
	}
}

// Ablation: zero-skipping threshold sweep on the sharpened database.
func BenchmarkSkipThreshold(b *testing.B) {
	for _, th := range []float32{0, 0.01, 0.1, 0.5} {
		b.Run(ftoa(th), func(b *testing.B) {
			benchEngine(b, func(m *core.Memory) core.Engine {
				return core.NewColumn(m, core.Options{ChunkSize: 1000, SkipThreshold: th})
			})
		})
	}
}

// Ablation: the paper's GPU §4.1.2 argument — matrix compaction costs
// as much as the weighted sum it accelerates, while MnnFast's inline
// zero-skipping pays nothing up front.
func BenchmarkSparseCompaction(b *testing.B) {
	const ns, ed = 1 << 15, 48
	rng := rand.New(rand.NewSource(3))
	out := tensor.RandomMatrix(rng, ns, ed, 1)
	weights := tensor.NewVector(ns)
	for i := range weights {
		if rng.Float64() < 0.02 {
			weights[i] = rng.Float32()*0.5 + 0.2
		} else {
			weights[i] = rng.Float32() * 0.001
		}
	}
	o := tensor.NewVector(ed)

	b.Run("compact-then-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, _ := sparse.Compact(weights, out, 0.1)
			c.WeightedSum(o)
		}
	})
	b.Run("direct-skip-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.DirectSkipSum(weights, out, 0.1, o)
		}
	})
	b.Run("dense-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.VecMat(nil, weights, out, o)
		}
	})
}

// Experiment benchmarks — one per paper table/figure. Each iteration
// regenerates the artifact at the smoke configuration; the headline
// result is attached as a custom metric.

func benchCfg() experiments.Config { return experiments.QuickConfig() }

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1()
	}
}

func BenchmarkFig3(b *testing.B) {
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(benchCfg())
	}
	last := len(r.Threads) - 1
	b.ReportMetric(r.Speedup[len(r.Channels)-1][last], "speedup@maxT-4ch")
}

func BenchmarkFig4(b *testing.B) {
	var r *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(benchCfg())
	}
	b.ReportMetric(r.Relative[len(r.Dims)-1][len(r.EmbThreads)-1], "rel-perf@8emb")
}

func BenchmarkFig6(b *testing.B) {
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Sparsity.MeanBelow01, "frac-p<0.1")
}

func BenchmarkFig7(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reduction[len(r.Reduction)-1], "reduction@0.5")
}

func BenchmarkFig9(b *testing.B) {
	var r *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(benchCfg())
	}
	b.ReportMetric(r.AvgSpeedup[len(r.AvgSpeedup)-1], "mnnfast-avg-speedup")
}

func BenchmarkFig10(b *testing.B) {
	var r *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10(benchCfg())
	}
	c := len(r.Channels) - 1
	b.ReportMetric(r.ColumnStream[c][len(r.Threads)-1], "colS-speedup@maxT")
}

func BenchmarkFig11(b *testing.B) {
	var r *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(benchCfg())
	}
	b.ReportMetric(r.Normalized[2], "colS-normalized-misses")
}

func BenchmarkFig12(b *testing.B) {
	var r *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(benchCfg())
	}
	b.ReportMetric(r.GPUSpeedup[len(r.GPUSpeedup)-1], "speedup@4gpu")
}

func BenchmarkFig13(b *testing.B) {
	var r *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13(benchCfg())
	}
	b.ReportMetric(r.SpeedupAll, "fpga-mnnfast-speedup")
}

func BenchmarkFig14(b *testing.B) {
	var r *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14(benchCfg())
	}
	b.ReportMetric(r.Reduction[len(r.Reduction)-1], "reduction@256KB")
}

func BenchmarkEnergy(b *testing.B) {
	var r *experiments.EnergyResult
	for i := 0; i < b.N; i++ {
		r = experiments.Energy(benchCfg())
	}
	b.ReportMetric(r.FPGAAdvantage, "fpga-energy-advantage")
}

// BenchmarkNetworkAnswer exercises the full public API path: embedding
// a raw question, multi-hop inference, FC layer.
func BenchmarkNetworkAnswer(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := newBenchVocab()
	n, err := core.RandomNetwork(rng, v, 1<<14, 48, 3, 16, func(m *core.Memory) core.Engine {
		return core.NewColumn(m, core.Options{ChunkSize: 1000, SkipThreshold: 0.1})
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := n.Answer("where is john?"); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchVocab() *vocab.Vocabulary {
	v := vocab.New()
	for _, w := range []string{"where", "is", "john", "mary", "kitchen", "garden"} {
		v.Add(w)
	}
	return v
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float32) string {
	switch f {
	case 0:
		return "off"
	case 0.01:
		return "0.01"
	case 0.1:
		return "0.1"
	case 0.5:
		return "0.5"
	}
	return "x"
}

var _ = mnnfast.ExperimentIDs // keep the facade imported

// Ablation: streaming prefetch pipeline depth (the paper's design is a
// double buffer, depth 1).
func BenchmarkPrefetchDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(itoa(depth), func(b *testing.B) {
			benchEngine(b, func(m *core.Memory) core.Engine {
				return core.NewColumn(m, core.Options{ChunkSize: 1000, Streaming: true, PrefetchDepth: depth})
			})
		})
	}
}

// BenchmarkBatchInference compares per-question cost of batched
// multi-question inference (the GPU dataflow, one memory pass per
// batch) against a single-question loop.
func BenchmarkBatchInference(b *testing.B) {
	const ns, ed, nq = 1 << 15, 48, 16
	mem := benchMemory(b, ns, ed)
	rng := rand.New(rand.NewSource(5))
	u := tensor.RandomMatrix(rng, nq, ed, 1)
	o := tensor.NewMatrix(nq, ed)

	b.Run("batched", func(b *testing.B) {
		eng := core.NewColumn(mem, core.Options{ChunkSize: 1000})
		b.SetBytes((mem.In.SizeBytes() + mem.Out.SizeBytes()))
		for i := 0; i < b.N; i++ {
			eng.InferBatch(u, o)
		}
	})
	b.Run("looped", func(b *testing.B) {
		eng := core.NewColumn(mem, core.Options{ChunkSize: 1000})
		b.SetBytes((mem.In.SizeBytes() + mem.Out.SizeBytes()))
		for i := 0; i < b.N; i++ {
			for q := 0; q < nq; q++ {
				eng.Infer(u.Row(q), o.Row(q))
			}
		}
	})
}

// BenchmarkBypass regenerates the §3.3 embedding-isolation ablation.
func BenchmarkBypass(b *testing.B) {
	var r *experiments.BypassResult
	for i := 0; i < b.N; i++ {
		r = experiments.Bypass(benchCfg())
	}
	b.ReportMetric(r.InfMissRate[0]-r.InfMissRate[2], "missrate-saved-by-emb$")
}

// BenchmarkDRAMRow regenerates the DRAM row-buffer ablation.
func BenchmarkDRAMRow(b *testing.B) {
	var r *experiments.DRAMRowResult
	for i := 0; i < b.N; i++ {
		r = experiments.DRAMRow(benchCfg())
	}
	b.ReportMetric(r.Efficiency[1], "column-bw-efficiency")
}
